(** Recursive-descent parser for the free-form Fortran subset.

    The parser works on the logical-line stream produced by
    {!Line_scanner}: each statement occupies one logical line, and
    block structure (IF/DO/SUBROUTINE/MODULE/...) is recovered from the
    leading keyword of each line.  [!$OMP] directive lines are parsed
    into {!Ast.omp_do} clauses and attached to the following DO loop. *)

open Ast

exception Parse_error of int * string

let fail lineno fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (lineno, msg))) fmt

(** {1 Token cursor over one line} *)

type cursor = {
  toks : Lexer.token array;
  mutable pos : int;
  lineno : int;
}

let cursor_of_line (l : Line_scanner.line) =
  match Lexer.tokenize l.Line_scanner.text with
  | toks -> { toks = Array.of_list toks; pos = 0; lineno = l.Line_scanner.lineno }
  | exception Lexer.Lex_error msg -> fail l.Line_scanner.lineno "%s" msg

let peek c = c.toks.(c.pos)
let peek2 c =
  if c.pos + 1 < Array.length c.toks then c.toks.(c.pos + 1) else Lexer.Eof

let advance c = c.pos <- c.pos + 1

let next c =
  let t = peek c in
  advance c;
  t

let expect c tok what =
  let t = next c in
  if t <> tok then
    fail c.lineno "expected %s, got %a" what Lexer.pp_token t

let expect_ident c =
  match next c with
  | Lexer.Ident s -> s
  | t -> fail c.lineno "expected identifier, got %a" Lexer.pp_token t

let accept c tok = if peek c = tok then (advance c; true) else false

let at_eof c = peek c = Lexer.Eof

let expect_end c =
  if not (at_eof c) then
    fail c.lineno "trailing tokens starting at %a" Lexer.pp_token (peek c)

(** {1 Expressions}

    Precedence (low to high): .eqv./.neqv. < .or. < .and. < .not. <
    comparison < // < +,- < *,/ < unary +,- < ** (right assoc). *)

let rec parse_expr c = parse_eqv c

and parse_eqv c =
  let lhs = parse_or c in
  match peek c with
  | Lexer.Eqv_tok -> advance c; Binop (Eqv, lhs, parse_eqv c)
  | Lexer.Neqv_tok -> advance c; Binop (Neqv, lhs, parse_eqv c)
  | _ -> lhs

and parse_or c =
  let lhs = parse_and c in
  let rec loop lhs =
    if accept c Lexer.Or_tok then loop (Binop (Or, lhs, parse_and c)) else lhs
  in
  loop lhs

and parse_and c =
  let lhs = parse_not c in
  let rec loop lhs =
    if accept c Lexer.And_tok then loop (Binop (And, lhs, parse_not c))
    else lhs
  in
  loop lhs

and parse_not c =
  if accept c Lexer.Not_tok then Unop (Not, parse_not c) else parse_comparison c

and parse_comparison c =
  let lhs = parse_concat c in
  let op =
    match peek c with
    | Lexer.Eq_tok -> Some Eq
    | Lexer.Ne_tok -> Some Ne
    | Lexer.Lt_tok -> Some Lt
    | Lexer.Le_tok -> Some Le
    | Lexer.Gt_tok -> Some Gt
    | Lexer.Ge_tok -> Some Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance c;
    Binop (op, lhs, parse_concat c)
  | None -> lhs

and parse_concat c =
  let lhs = parse_additive c in
  let rec loop lhs =
    if accept c Lexer.Dslash then loop (Binop (Concat, lhs, parse_additive c))
    else lhs
  in
  loop lhs

and parse_additive c =
  let lhs = parse_multiplicative c in
  let rec loop lhs =
    match peek c with
    | Lexer.Plus -> advance c; loop (Binop (Add, lhs, parse_multiplicative c))
    | Lexer.Minus -> advance c; loop (Binop (Sub, lhs, parse_multiplicative c))
    | _ -> lhs
  in
  loop lhs

and parse_multiplicative c =
  let lhs = parse_unary c in
  let rec loop lhs =
    match peek c with
    | Lexer.Star -> advance c; loop (Binop (Mul, lhs, parse_unary c))
    | Lexer.Slash -> advance c; loop (Binop (Div, lhs, parse_unary c))
    | _ -> lhs
  in
  loop lhs

and parse_unary c =
  match peek c with
  | Lexer.Minus -> advance c; Unop (Neg, parse_unary c)
  | Lexer.Plus -> advance c; Unop (Pos, parse_unary c)
  | _ -> parse_power c

and parse_power c =
  let base = parse_primary c in
  if accept c Lexer.Dstar then Binop (Pow, base, parse_unary c) else base

and parse_primary c =
  match next c with
  | Lexer.Int n -> Int_lit n
  | Lexer.Real (x, d) -> Real_lit (x, d)
  | Lexer.Str s -> Str_lit s
  | Lexer.True_tok -> Logical_lit true
  | Lexer.False_tok -> Logical_lit false
  | Lexer.Lparen ->
    let e = parse_expr c in
    expect c Lexer.Rparen ")";
    e
  | Lexer.Ident name -> parse_designator_tail c name
  | t -> fail c.lineno "unexpected token %a in expression" Lexer.pp_token t

(** Parse the rest of a designator whose first name was consumed. *)
and parse_designator_tail c name =
  let parse_args () =
    if accept c Lexer.Lparen then begin
      if accept c Lexer.Rparen then []
      else begin
        let args = ref [ parse_subscript c ] in
        while accept c Lexer.Comma do
          args := parse_subscript c :: !args
        done;
        expect c Lexer.Rparen ")";
        List.rev !args
      end
    end
    else []
  in
  let first = (name, parse_args ()) in
  let parts = ref [ first ] in
  while accept c Lexer.Percent do
    let field = expect_ident c in
    parts := (field, parse_args ()) :: !parts
  done;
  Desig (List.rev !parts)

(** One subscript: expression, or a section [lo:hi] / [:] / [lo:] / [:hi]. *)
and parse_subscript c =
  if peek c = Lexer.Colon then begin
    advance c;
    match peek c with
    | Lexer.Comma | Lexer.Rparen -> Section (None, None)
    | _ -> Section (None, Some (parse_expr c))
  end
  else
    let e = parse_expr c in
    if accept c Lexer.Colon then
      match peek c with
      | Lexer.Comma | Lexer.Rparen -> Section (Some e, None)
      | _ -> Section (Some e, Some (parse_expr c))
    else e

let parse_expr_string ?(lineno = 0) text =
  let c =
    cursor_of_line { Line_scanner.lineno; text; is_directive = false }
  in
  let e = parse_expr c in
  expect_end c;
  e

(** {1 Line classification} *)

(* First identifier(s) of the line, for dispatch. *)
let first_word (l : Line_scanner.line) =
  match Lexer.tokenize l.Line_scanner.text with
  | Lexer.Ident w :: _ -> Some w
  | _ -> None
  | exception Lexer.Lex_error _ -> None

(* Is this line "end <kw>" or "end"? Handles fused forms endif/enddo. *)
let is_end_of kw (l : Line_scanner.line) =
  match Lexer.tokenize l.Line_scanner.text with
  | [ Lexer.Ident "end"; Lexer.Eof ] -> true
  | Lexer.Ident "end" :: Lexer.Ident w :: _ -> w = kw
  | [ Lexer.Ident w; Lexer.Eof ] -> w = "end" ^ kw
  | Lexer.Ident w :: _ -> w = "end" ^ kw
  | _ -> false
  | exception Lexer.Lex_error _ -> false

(** {1 Line stream} *)

type stream = {
  lines : Line_scanner.line array;
  mutable idx : int;
}

let stream_of_lines lines = { lines = Array.of_list lines; idx = 0 }

let cur s = if s.idx < Array.length s.lines then Some s.lines.(s.idx) else None

let bump s = s.idx <- s.idx + 1

let cur_exn s what =
  match cur s with
  | Some l -> l
  | None -> fail 0 "unexpected end of input, expected %s" what

(** {1 OMP directives} *)

let parse_omp_reduction_op c =
  match next c with
  | Lexer.Plus -> Osum
  | Lexer.Star -> Oprod
  | Lexer.Ident "max" -> Omax
  | Lexer.Ident "min" -> Omin
  | t -> fail c.lineno "unknown reduction operator %a" Lexer.pp_token t

let parse_name_list c =
  expect c Lexer.Lparen "(";
  let names = ref [ expect_ident c ] in
  while accept c Lexer.Comma do
    names := expect_ident c :: !names
  done;
  expect c Lexer.Rparen ")";
  List.rev !names

(* Parse the clause list of a PARALLEL DO directive; cursor is after
   "parallel do". *)
let parse_omp_clauses c =
  let d = ref omp_do_default in
  let rec loop () =
    match peek c with
    | Lexer.Eof -> ()
    | Lexer.Comma -> advance c; loop ()
    | Lexer.Ident "private" ->
      advance c;
      d := { !d with omp_private = !d.omp_private @ parse_name_list c };
      loop ()
    | Lexer.Ident "firstprivate" ->
      advance c;
      d := { !d with omp_firstprivate = !d.omp_firstprivate @ parse_name_list c };
      loop ()
    | Lexer.Ident "shared" ->
      advance c;
      d := { !d with omp_shared = !d.omp_shared @ parse_name_list c };
      loop ()
    | Lexer.Ident "copyprivate" ->
      advance c;
      d := { !d with omp_copyprivate = !d.omp_copyprivate @ parse_name_list c };
      loop ()
    | Lexer.Ident "default" ->
      advance c;
      expect c Lexer.Lparen "(";
      let _ = expect_ident c in
      expect c Lexer.Rparen ")";
      loop ()
    | Lexer.Ident "reduction" ->
      advance c;
      expect c Lexer.Lparen "(";
      let op = parse_omp_reduction_op c in
      expect c Lexer.Colon ":";
      let names = ref [ expect_ident c ] in
      while accept c Lexer.Comma do
        names := expect_ident c :: !names
      done;
      expect c Lexer.Rparen ")";
      d := { !d with omp_reduction = !d.omp_reduction @ [ (op, List.rev !names) ] };
      loop ()
    | Lexer.Ident "collapse" ->
      advance c;
      expect c Lexer.Lparen "(";
      let n =
        match next c with
        | Lexer.Int n -> n
        | t -> fail c.lineno "collapse expects an integer, got %a" Lexer.pp_token t
      in
      expect c Lexer.Rparen ")";
      d := { !d with omp_collapse = n };
      loop ()
    | Lexer.Ident "num_threads" ->
      advance c;
      expect c Lexer.Lparen "(";
      let e = parse_expr c in
      expect c Lexer.Rparen ")";
      d := { !d with omp_num_threads = Some e };
      loop ()
    | Lexer.Ident "schedule" ->
      advance c;
      expect c Lexer.Lparen "(";
      let kind = expect_ident c in
      (* optional literal chunk size *)
      let chunk =
        if accept c Lexer.Comma then
          match parse_expr c with
          | Int_lit n when n >= 1 -> Some n
          | e ->
            fail c.lineno "schedule chunk must be a positive integer, got %a"
              pp_expr e
        else None
      in
      let sched =
        match (kind, chunk) with
        | "static", None -> Static
        | "static", Some k -> Static_chunk k
        | "dynamic", k -> Dynamic (Option.value k ~default:1)
        | "guided", k -> Guided (Option.value k ~default:1)
        | s, _ -> fail c.lineno "unknown schedule %S" s
      in
      expect c Lexer.Rparen ")";
      d := { !d with omp_schedule = Some sched };
      loop ()
    | t -> fail c.lineno "unknown OMP clause starting with %a" Lexer.pp_token t
  in
  loop ();
  !d

type omp_directive =
  | Dir_parallel_do of omp_do
  | Dir_end_parallel_do
  | Dir_atomic
  | Dir_critical
  | Dir_end_critical
  | Dir_barrier

let parse_omp_line (l : Line_scanner.line) =
  let c = cursor_of_line l in
  match next c with
  | Lexer.Ident "parallel" -> (
    match peek c with
    | Lexer.Ident "do" ->
      advance c;
      Dir_parallel_do (parse_omp_clauses c)
    | _ -> Dir_parallel_do (parse_omp_clauses c))
  | Lexer.Ident "do" -> Dir_parallel_do (parse_omp_clauses c)
  | Lexer.Ident "atomic" -> Dir_atomic
  | Lexer.Ident "critical" -> Dir_critical
  | Lexer.Ident "barrier" -> Dir_barrier
  | Lexer.Ident "end" -> (
    match next c with
    | Lexer.Ident "parallel" -> Dir_end_parallel_do
    | Lexer.Ident "critical" -> Dir_end_critical
    | t -> fail l.Line_scanner.lineno "unknown OMP end directive %a" Lexer.pp_token t)
  | t ->
    fail l.Line_scanner.lineno "unknown OMP directive starting with %a"
      Lexer.pp_token t

(** {1 Declarations} *)

let base_type_keywords = [ "integer"; "real"; "logical"; "character"; "double" ]

(* Parse base type at cursor; cursor sits on the type keyword. *)
let parse_base_type c =
  match expect_ident c with
  | "integer" ->
    (* optional *4 / (kind=4) — parsed and ignored *)
    if accept c Lexer.Star then ignore (next c);
    Integer
  | "real" ->
    if accept c Lexer.Star then
      match next c with
      | Lexer.Int 8 -> Real8
      | Lexer.Int _ -> Real
      | t -> fail c.lineno "bad kind after real*, got %a" Lexer.pp_token t
    else if peek c = Lexer.Lparen && peek2 c = Lexer.Ident "kind" then begin
      advance c;
      let _ = expect_ident c in
      expect c Lexer.Assign_tok "=";
      let k = next c in
      expect c Lexer.Rparen ")";
      match k with
      | Lexer.Int 8 -> Real8
      | _ -> Real
    end
    else Real
  | "double" ->
    let w = expect_ident c in
    if w <> "precision" then fail c.lineno "expected DOUBLE PRECISION";
    Real8
  | "logical" -> Logical
  | "character" ->
    if accept c Lexer.Lparen then begin
      (* (len=N) or (N) *)
      let len =
        match peek c with
        | Lexer.Ident "len" ->
          advance c;
          expect c Lexer.Assign_tok "=";
          (match next c with
          | Lexer.Int n -> Some n
          | Lexer.Star -> None
          | t -> fail c.lineno "bad character length %a" Lexer.pp_token t)
        | Lexer.Int n -> advance c; Some n
        | Lexer.Star -> advance c; None
        | t -> fail c.lineno "bad character spec %a" Lexer.pp_token t
      in
      expect c Lexer.Rparen ")";
      Character len
    end
    else if accept c Lexer.Star then
      match next c with
      | Lexer.Int n -> Character (Some n)
      | t -> fail c.lineno "bad character length %a" Lexer.pp_token t
    else Character None
  | w -> fail c.lineno "not a type keyword: %s" w

(* dims: "(d1, d2, ...)" where d is expr | expr:expr | ':' | '*' .
   Returns (dims, deferred_rank). *)
let parse_dim_spec c =
  expect c Lexer.Lparen "(";
  let dims = ref [] in
  let deferred = ref 0 in
  let parse_one () =
    match peek c with
    | Lexer.Colon ->
      advance c;
      incr deferred;
      (None, Int_lit 0)
    | Lexer.Star ->
      advance c;
      incr deferred;
      (None, Int_lit 0)
    | _ ->
      let e = parse_expr c in
      if accept c Lexer.Colon then (Some e, parse_expr c) else (None, e)
  in
  dims := [ parse_one () ];
  while accept c Lexer.Comma do
    dims := parse_one () :: !dims
  done;
  expect c Lexer.Rparen ")";
  let dims = List.rev !dims in
  let rank = List.length dims in
  if !deferred > 0 then (dims, Some rank) else (dims, None)

let parse_attr c =
  match expect_ident c with
  | "dimension" ->
    let dims, _ = parse_dim_spec c in
    Dimension dims
  | "allocatable" -> Allocatable
  | "save" -> Save
  | "parameter" -> Parameter
  | "pointer" -> Pointer
  | "target" -> Target
  | "intent" ->
    expect c Lexer.Lparen "(";
    let dir =
      match expect_ident c with
      | "in" -> Intent_in
      | "out" -> Intent_out
      | "inout" -> Intent_inout
      | s -> fail c.lineno "bad intent %S" s
    in
    expect c Lexer.Rparen ")";
    dir
  | s -> fail c.lineno "unknown attribute %S" s

let parse_entity c =
  let ent_name = expect_ident c in
  let ent_dims, ent_deferred =
    if peek c = Lexer.Lparen then
      let dims, deferred = parse_dim_spec c in
      (Some dims, deferred)
    else (None, None)
  in
  let ent_init =
    if accept c Lexer.Assign_tok then Some (parse_expr c) else None
  in
  { ent_name; ent_dims; ent_deferred; ent_init }

(* Full variable declaration line; cursor on the type keyword. *)
let parse_var_decl c =
  let base = parse_base_type c in
  let attrs = ref [] in
  while peek c = Lexer.Comma do
    advance c;
    attrs := parse_attr c :: !attrs
  done;
  let _ = accept c Lexer.Dcolon in
  let entities = ref [ parse_entity c ] in
  while accept c Lexer.Comma do
    entities := parse_entity c :: !entities
  done;
  expect_end c;
  Var_decl { base; attrs = List.rev !attrs; entities = List.rev !entities }

(* TYPE(name) variable declaration (as opposed to TYPE definition). *)
let parse_derived_var_decl c =
  (* cursor after "type" *)
  expect c Lexer.Lparen "(";
  let tname = expect_ident c in
  expect c Lexer.Rparen ")";
  let attrs = ref [] in
  while peek c = Lexer.Comma do
    advance c;
    attrs := parse_attr c :: !attrs
  done;
  let _ = accept c Lexer.Dcolon in
  let entities = ref [ parse_entity c ] in
  while accept c Lexer.Comma do
    entities := parse_entity c :: !entities
  done;
  expect_end c;
  Var_decl { base = Derived tname; attrs = List.rev !attrs; entities = List.rev !entities }

let parse_common c =
  (* cursor after "common" *)
  expect c Lexer.Slash "/";
  let block = expect_ident c in
  expect c Lexer.Slash "/";
  let names = ref [ expect_ident c ] in
  (* members may carry dims in F77 style: common /b/ a(10) — accept and
     drop the dims (the separate declaration carries them in our subset) *)
  let skip_dims () =
    if peek c = Lexer.Lparen then ignore (parse_dim_spec c)
  in
  skip_dims ();
  while accept c Lexer.Comma do
    names := expect_ident c :: !names;
    skip_dims ()
  done;
  expect_end c;
  Common (block, List.rev !names)

let parse_use c =
  let m = expect_ident c in
  let only =
    if accept c Lexer.Comma then begin
      let w = expect_ident c in
      if w <> "only" then fail c.lineno "expected ONLY in USE";
      expect c Lexer.Colon ":";
      let names = ref [ expect_ident c ] in
      while accept c Lexer.Comma do
        names := expect_ident c :: !names
      done;
      List.rev !names
    end
    else []
  in
  expect_end c;
  Use (m, only)

(** {1 Statements} *)

let rec parse_stmt_lines s ~stop =
  let body = ref [] in
  let rec loop () =
    match cur s with
    | None -> fail 0 "unexpected end of input in statement block"
    | Some l ->
      if stop l then ()
      else begin
        (match parse_one_stmt s l with
        | Some st -> body := st :: !body
        | None -> ());
        loop ()
      end
  in
  loop ();
  List.rev !body

and parse_one_stmt s (l : Line_scanner.line) : stmt option =
  if l.Line_scanner.is_directive then begin
    match parse_omp_line l with
    | Dir_parallel_do d ->
      bump s;
      let next_l = cur_exn s "DO loop after !$OMP PARALLEL DO" in
      (match parse_one_stmt s next_l with
      | Some (Do loop) -> Some (Do { loop with do_omp = Some d })
      | Some _ | None ->
        fail next_l.Line_scanner.lineno
          "!$OMP PARALLEL DO must be followed by a DO loop")
    | Dir_end_parallel_do ->
      bump s;
      None
    | Dir_atomic ->
      bump s;
      let next_l = cur_exn s "statement after !$OMP ATOMIC" in
      (match parse_one_stmt s next_l with
      | Some (Assign _ as a) -> Some (Omp_atomic a)
      | Some _ | None ->
        fail next_l.Line_scanner.lineno
          "!$OMP ATOMIC must be followed by an assignment")
    | Dir_critical ->
      bump s;
      let stop (l : Line_scanner.line) =
        l.Line_scanner.is_directive && parse_omp_line l = Dir_end_critical
      in
      let body = parse_stmt_lines s ~stop in
      bump s;
      (* consume end critical *)
      Some (Omp_critical body)
    | Dir_end_critical ->
      fail l.Line_scanner.lineno "unmatched !$OMP END CRITICAL"
    | Dir_barrier ->
      bump s;
      Some Omp_barrier
  end
  else
    let c = cursor_of_line l in
    match peek c with
    | Lexer.Ident "if" -> parse_if s
    | Lexer.Ident "do" -> parse_do s
    | Lexer.Ident "call" ->
      bump s;
      advance c;
      let name = expect_ident c in
      let args =
        if accept c Lexer.Lparen then begin
          if accept c Lexer.Rparen then []
          else begin
            let args = ref [ parse_subscript c ] in
            while accept c Lexer.Comma do
              args := parse_subscript c :: !args
            done;
            expect c Lexer.Rparen ")";
            List.rev !args
          end
        end
        else []
      in
      expect_end c;
      Some (Call (name, args))
    | Lexer.Ident "return" -> bump s; Some Return
    | Lexer.Ident "exit" -> bump s; Some Exit
    | Lexer.Ident "cycle" -> bump s; Some Cycle
    | Lexer.Ident "continue" -> bump s; Some Continue
    | Lexer.Ident "stop" ->
      bump s;
      advance c;
      let msg =
        match peek c with
        | Lexer.Str m -> Some m
        | Lexer.Int n -> Some (string_of_int n)
        | _ -> None
      in
      Some (Stop msg)
    | Lexer.Ident "allocate" ->
      bump s;
      advance c;
      expect c Lexer.Lparen "(";
      let parse_alloc () =
        let name = expect_ident c in
        expect c Lexer.Lparen "(";
        let exprs = ref [ parse_subscript c ] in
        while accept c Lexer.Comma do
          exprs := parse_subscript c :: !exprs
        done;
        expect c Lexer.Rparen ")";
        ([ (name, []) ], List.rev !exprs)
      in
      let allocs = ref [ parse_alloc () ] in
      while accept c Lexer.Comma do
        allocs := parse_alloc () :: !allocs
      done;
      expect c Lexer.Rparen ")";
      expect_end c;
      Some (Allocate (List.rev !allocs))
    | Lexer.Ident "deallocate" ->
      bump s;
      advance c;
      expect c Lexer.Lparen "(";
      let ds = ref [ [ (expect_ident c, []) ] ] in
      while accept c Lexer.Comma do
        ds := [ (expect_ident c, []) ] :: !ds
      done;
      expect c Lexer.Rparen ")";
      expect_end c;
      Some (Deallocate (List.rev !ds))
    | Lexer.Ident "print" ->
      bump s;
      advance c;
      expect c Lexer.Star "*";
      let args = ref [] in
      while accept c Lexer.Comma do
        args := parse_expr c :: !args
      done;
      Some (Print (List.rev !args))
    | Lexer.Ident "write" ->
      bump s;
      advance c;
      expect c Lexer.Lparen "(";
      (* accept "(star, star)" or "(unit, star)" and ignore *)
      let skip_item () =
        match peek c with
        | Lexer.Star -> advance c
        | _ -> ignore (parse_expr c)
      in
      skip_item ();
      if accept c Lexer.Comma then skip_item ();
      expect c Lexer.Rparen ")";
      let args = ref [] in
      if not (at_eof c) then begin
        args := [ parse_expr c ];
        while accept c Lexer.Comma do
          args := parse_expr c :: !args
        done
      end;
      Some (Print (List.rev !args))
    | _ -> (
      (* assignment: designator = expr *)
      bump s;
      match next c with
      | Lexer.Ident name -> (
        match parse_designator_tail c name with
        | Desig d ->
          expect c Lexer.Assign_tok "=";
          let rhs = parse_expr c in
          expect_end c;
          Some (Assign (d, rhs))
        | _ -> assert false)
      | t ->
        fail l.Line_scanner.lineno "cannot parse statement starting with %a"
          Lexer.pp_token t)

and parse_if s =
  let l = cur_exn s "if" in
  let c = cursor_of_line l in
  advance c;
  (* 'if' *)
  expect c Lexer.Lparen "(";
  let cond = parse_expr c in
  expect c Lexer.Rparen ")";
  match peek c with
  | Lexer.Ident "then" ->
    advance c;
    expect_end c;
    bump s;
    (* block IF: collect branches until END IF *)
    let branches = ref [] in
    let else_body = ref [] in
    let rec collect current_cond =
      let stop (l : Line_scanner.line) =
        (not l.Line_scanner.is_directive)
        && (is_end_of "if" l
           ||
           match first_word l with
           | Some "else" | Some "elseif" -> true
           | _ -> false)
      in
      let body = parse_stmt_lines s ~stop in
      let l = cur_exn s "end if" in
      if is_end_of "if" l then begin
        bump s;
        branches := (current_cond, body) :: !branches
      end
      else begin
        (* else / else if *)
        let c = cursor_of_line l in
        let w = expect_ident c in
        let is_elseif =
          (w = "elseif") || (w = "else" && peek c = Lexer.Ident "if")
        in
        if is_elseif then begin
          if w = "else" then advance c;
          expect c Lexer.Lparen "(";
          let cond' = parse_expr c in
          expect c Lexer.Rparen ")";
          (match peek c with
          | Lexer.Ident "then" -> advance c
          | _ -> ());
          expect_end c;
          bump s;
          branches := (current_cond, body) :: !branches;
          collect cond'
        end
        else begin
          (* plain else *)
          expect_end c;
          bump s;
          branches := (current_cond, body) :: !branches;
          let stop l = (not l.Line_scanner.is_directive) && is_end_of "if" l in
          else_body := parse_stmt_lines s ~stop;
          bump s (* end if *)
        end
      end
    in
    collect cond;
    Some (If_block (List.rev !branches, !else_body))
  | _ ->
    (* logical IF: rest of line is a single simple statement *)
    let rest = parse_inline_stmt c l.Line_scanner.lineno in
    bump s;
    Some (If_arith (cond, rest))

(* Simple statement allowed after a logical IF: assignment, CALL,
   RETURN, EXIT, CYCLE, STOP. *)
and parse_inline_stmt c lineno =
  match next c with
  | Lexer.Ident "return" -> Return
  | Lexer.Ident "exit" -> Exit
  | Lexer.Ident "cycle" -> Cycle
  | Lexer.Ident "stop" -> (
    match peek c with
    | Lexer.Str m -> advance c; Stop (Some m)
    | _ -> Stop None)
  | Lexer.Ident "call" ->
    let name = expect_ident c in
    let args =
      if accept c Lexer.Lparen then begin
        if accept c Lexer.Rparen then []
        else begin
          let args = ref [ parse_subscript c ] in
          while accept c Lexer.Comma do
            args := parse_subscript c :: !args
          done;
          expect c Lexer.Rparen ")";
          List.rev !args
        end
      end
      else []
    in
    Call (name, args)
  | Lexer.Ident name -> (
    match parse_designator_tail c name with
    | Desig d ->
      expect c Lexer.Assign_tok "=";
      let rhs = parse_expr c in
      expect_end c;
      Assign (d, rhs)
    | _ -> assert false)
  | t -> fail lineno "bad statement after logical IF: %a" Lexer.pp_token t

and parse_do s =
  let l = cur_exn s "do" in
  let c = cursor_of_line l in
  advance c;
  (* 'do' *)
  match peek c with
  | Lexer.Ident "while" ->
    advance c;
    expect c Lexer.Lparen "(";
    let cond = parse_expr c in
    expect c Lexer.Rparen ")";
    expect_end c;
    bump s;
    let stop l = (not l.Line_scanner.is_directive) && is_end_of "do" l in
    let body = parse_stmt_lines s ~stop in
    bump s;
    Some (Do_while (cond, body))
  | _ ->
    let do_var = expect_ident c in
    expect c Lexer.Assign_tok "=";
    let do_lo = parse_expr c in
    expect c Lexer.Comma ",";
    let do_hi = parse_expr c in
    let do_step = if accept c Lexer.Comma then Some (parse_expr c) else None in
    expect_end c;
    bump s;
    let stop l = (not l.Line_scanner.is_directive) && is_end_of "do" l in
    let body = parse_stmt_lines s ~stop in
    bump s;
    Some (Do { do_var; do_lo; do_hi; do_step; do_body = body; do_omp = None })

(** {1 Program units} *)

let is_plain_end (l : Line_scanner.line) =
  match Lexer.tokenize l.Line_scanner.text with
  | [ Lexer.Ident "end"; Lexer.Eof ] -> true
  | _ -> false
  | exception Lexer.Lex_error _ -> false

let decl_starters =
  base_type_keywords @ [ "type"; "common"; "use"; "implicit"; "external" ]

let is_decl_line (l : Line_scanner.line) =
  if l.Line_scanner.is_directive then false
  else
    match Lexer.tokenize l.Line_scanner.text with
    | Lexer.Ident w :: rest -> (
      if not (List.mem w decl_starters) then false
      else
        match (w, rest) with
        (* "type(t) :: x" is a decl; "type x" could be a TYPE def *)
        | "integer", Lexer.Ident "function" :: _
        | "real", Lexer.Ident "function" :: _
        | "logical", Lexer.Ident "function" :: _ ->
          false
        | _ -> true)
    | _ -> false
    | exception Lexer.Lex_error _ -> false

let rec parse_decl s : decl =
  let l = cur_exn s "declaration" in
  let c = cursor_of_line l in
  match peek c with
  | Lexer.Ident "implicit" ->
    bump s;
    Implicit_none
  | Lexer.Ident "use" ->
    bump s;
    advance c;
    parse_use c
  | Lexer.Ident "common" ->
    bump s;
    advance c;
    parse_common c
  | Lexer.Ident "external" ->
    bump s;
    advance c;
    let names = ref [ expect_ident c ] in
    while accept c Lexer.Comma do
      names := expect_ident c :: !names
    done;
    External (List.rev !names)
  | Lexer.Ident "type" ->
    if peek2 c = Lexer.Lparen then begin
      bump s;
      advance c;
      parse_derived_var_decl c
    end
    else begin
      (* TYPE definition: type [::] name ... end type *)
      bump s;
      advance c;
      let _ = accept c Lexer.Dcolon in
      let type_name = expect_ident c in
      expect_end c;
      let fields = ref [] in
      let rec loop () =
        let l = cur_exn s "end type" in
        if is_end_of "type" l then bump s
        else begin
          fields := parse_decl s :: !fields;
          loop ()
        end
      in
      loop ();
      Type_def { type_name; fields = List.rev !fields }
    end
  | Lexer.Ident w when List.mem w base_type_keywords ->
    bump s;
    parse_var_decl c
  | t -> fail l.Line_scanner.lineno "expected declaration, got %a" Lexer.pp_token t

let parse_decls s ~stop =
  let decls = ref [] in
  let rec loop () =
    match cur s with
    | None -> ()
    | Some l ->
      if stop l then ()
      else if is_decl_line l then begin
        decls := parse_decl s :: !decls;
        loop ()
      end
      else ()
  in
  loop ();
  List.rev !decls

(* Header "subroutine name(args)" or "[type] function name(args)".
   Cursor on first token of the line. *)
let parse_subprogram_header (l : Line_scanner.line) =
  let c = cursor_of_line l in
  let result_type =
    match peek c with
    | Lexer.Ident w when List.mem w base_type_keywords ->
      Some (parse_base_type c)
    | _ -> None
  in
  let kw = expect_ident c in
  let kind =
    match kw with
    | "subroutine" ->
      if result_type <> None then
        fail l.Line_scanner.lineno "subroutine cannot have a result type";
      `Subroutine
    | "function" -> `Function result_type
    | w -> fail l.Line_scanner.lineno "expected SUBROUTINE or FUNCTION, got %s" w
  in
  let name = expect_ident c in
  let args =
    if accept c Lexer.Lparen then begin
      if accept c Lexer.Rparen then []
      else begin
        let args = ref [ expect_ident c ] in
        while accept c Lexer.Comma do
          args := expect_ident c :: !args
        done;
        expect c Lexer.Rparen ")";
        List.rev !args
      end
    end
    else []
  in
  (* optional RESULT(name) — unsupported, flag it *)
  if not (at_eof c) then
    fail l.Line_scanner.lineno "unsupported tokens after subprogram header";
  (name, kind, args)

let is_subprogram_start (l : Line_scanner.line) =
  if l.Line_scanner.is_directive then false
  else
    match Lexer.tokenize l.Line_scanner.text with
    | Lexer.Ident "subroutine" :: _ -> true
    | Lexer.Ident "function" :: _ -> true
    | Lexer.Ident w :: Lexer.Ident "function" :: _
      when List.mem w base_type_keywords ->
      true
    | Lexer.Ident "double" :: Lexer.Ident "precision" :: Lexer.Ident "function" :: _ ->
      true
    | Lexer.Ident ("real" | "integer") :: Lexer.Star :: Lexer.Int _ :: Lexer.Ident "function" :: _ ->
      true
    | _ -> false
    | exception Lexer.Lex_error _ -> false

let parse_subprogram s =
  let l = cur_exn s "subprogram" in
  let sub_name, sub_kind, sub_args = parse_subprogram_header l in
  bump s;
  let endkw =
    match sub_kind with
    | `Subroutine -> "subroutine"
    | `Function _ -> "function"
  in
  let stop_decl (l : Line_scanner.line) =
    is_end_of endkw l || is_plain_end l
  in
  let sub_decls = parse_decls s ~stop:stop_decl in
  let stop (l : Line_scanner.line) =
    (not l.Line_scanner.is_directive) && (is_end_of endkw l || is_plain_end l)
  in
  let sub_body = parse_stmt_lines s ~stop in
  bump s;
  (* end subroutine *)
  { sub_name; sub_kind; sub_args; sub_decls; sub_body }

let parse_module s =
  let l = cur_exn s "module" in
  let c = cursor_of_line l in
  let _ = expect_ident c in
  (* "module" *)
  let mod_name = expect_ident c in
  expect_end c;
  bump s;
  let stop (l : Line_scanner.line) =
    is_end_of "module" l
    ||
    match first_word l with
    | Some "contains" -> true
    | _ -> false
  in
  let mod_decls = parse_decls s ~stop in
  let mod_contains = ref [] in
  (match cur s with
  | Some l when first_word l = Some "contains" ->
    bump s;
    let rec loop () =
      let l = cur_exn s "end module" in
      if is_end_of "module" l then ()
      else if is_subprogram_start l then begin
        mod_contains := parse_subprogram s :: !mod_contains;
        loop ()
      end
      else
        fail l.Line_scanner.lineno "expected subprogram in CONTAINS section: %s"
          l.Line_scanner.text
    in
    loop ()
  | _ -> ());
  (* consume "end module" *)
  (match cur s with
  | Some l when is_end_of "module" l -> bump s
  | Some l -> fail l.Line_scanner.lineno "expected END MODULE"
  | None -> fail 0 "expected END MODULE");
  Module { mod_name; mod_decls; mod_contains = List.rev !mod_contains }

let parse_main s =
  let l = cur_exn s "program" in
  let c = cursor_of_line l in
  let _ = expect_ident c in
  let main_name = expect_ident c in
  expect_end c;
  bump s;
  let stop l = is_end_of "program" l || is_plain_end l in
  let main_decls = parse_decls s ~stop in
  let stop (l : Line_scanner.line) =
    (not l.Line_scanner.is_directive) && (is_end_of "program" l || is_plain_end l)
  in
  let main_body = parse_stmt_lines s ~stop in
  bump s;
  Main { main_name; main_decls; main_body }

(** Parse a whole source file into program units. *)
let parse_string source : compilation_unit =
  let lines = Line_scanner.scan source in
  let s = stream_of_lines lines in
  let units = ref [] in
  let rec loop () =
    match cur s with
    | None -> ()
    | Some l ->
      (match first_word l with
      | Some "module" -> units := parse_module s :: !units
      | Some "program" -> units := parse_main s :: !units
      | _ when is_subprogram_start l ->
        units := Standalone (parse_subprogram s) :: !units
      | _ ->
        fail l.Line_scanner.lineno "expected a program unit, got: %s"
          l.Line_scanner.text);
      loop ()
  in
  loop ();
  List.rev !units
