(** Pretty-printer: Fortran AST → free-form source.

    Output is human-readable (the paper stresses GLAF generates
    "human-readable, compatible code") and reparseable by {!Parser}:
    [parse_string (to_string cu)] yields an equal AST, a property the
    test suite checks with qcheck. *)

open Ast

let buf_add = Buffer.add_string

let expr_prec = function
  | Binop (Or, _, _) -> 1
  | Binop (And, _, _) -> 2
  | Unop (Not, _) -> 3
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge), _, _) -> 4
  | Binop (Concat, _, _) -> 5
  | Binop ((Add | Sub), _, _) -> 6
  | Binop ((Mul | Div), _, _) -> 7
  | Unop ((Neg | Pos), _) -> 8
  | Binop (Pow, _, _) -> 9
  | Binop ((Eqv | Neqv), _, _) -> 0
  | Int_lit _ | Real_lit _ | Logical_lit _ | Str_lit _ | Desig _
  | Implied_do _ | Section _ ->
    10

and binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Concat -> "//"
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> ".and."
  | Or -> ".or."
  | Eqv -> ".eqv."
  | Neqv -> ".neqv."

let float_literal x is_double =
  let s =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.1f" x
    else Printf.sprintf "%.17g" x
  in
  if is_double then
    (* spell as d-exponent *)
    if String.contains s 'e' then
      String.map (fun c -> if c = 'e' then 'd' else c) s
    else s ^ "d0"
  else s

let rec expr_to_buf b e =
  match e with
  | Int_lit n ->
    if n < 0 then buf_add b (Printf.sprintf "(%d)" n)
    else buf_add b (string_of_int n)
  | Real_lit (x, d) -> buf_add b (float_literal x d)
  | Logical_lit true -> buf_add b ".true."
  | Logical_lit false -> buf_add b ".false."
  | Str_lit s ->
    buf_add b "'";
    String.iter
      (fun c -> if c = '\'' then buf_add b "''" else Buffer.add_char b c)
      s;
    buf_add b "'"
  | Desig parts -> desig_to_buf b parts
  | Unop (op, a) ->
    let s = match op with Neg -> "-" | Pos -> "+" | Not -> ".not. " in
    buf_add b s;
    paren_if b (expr_prec a <= expr_prec e) a
  | Binop (op, x, y) ->
    let p = expr_prec e in
    (* ** is right-associative: parenthesize an equal-precedence left
       operand there, and an equal-precedence right operand everywhere
       else (a - (b - c), a / (b / c), ...). *)
    let left_needs, right_needs =
      if op = Pow then (expr_prec x <= p, expr_prec y < p)
      else (expr_prec x < p, expr_prec y <= p)
    in
    paren_if b left_needs x;
    buf_add b " ";
    buf_add b (binop_str op);
    buf_add b " ";
    paren_if b right_needs y
  | Implied_do (e, v, lo, hi) ->
    buf_add b "(";
    expr_to_buf b e;
    buf_add b (", " ^ v ^ " = ");
    expr_to_buf b lo;
    buf_add b ", ";
    expr_to_buf b hi;
    buf_add b ")"
  | Section (lo, hi) ->
    (match lo with Some e -> expr_to_buf b e | None -> ());
    buf_add b ":";
    (match hi with Some e -> expr_to_buf b e | None -> ())

and paren_if b need e =
  if need then begin
    buf_add b "(";
    expr_to_buf b e;
    buf_add b ")"
  end
  else expr_to_buf b e

and desig_to_buf b parts =
  List.iteri
    (fun i (name, args) ->
      if i > 0 then buf_add b "%";
      buf_add b name;
      match args with
      | [] -> ()
      | args ->
        buf_add b "(";
        List.iteri
          (fun j a ->
            if j > 0 then buf_add b ", ";
            expr_to_buf b a)
          args;
        buf_add b ")")
    parts

let expr_to_string e =
  let b = Buffer.create 64 in
  expr_to_buf b e;
  Buffer.contents b

let desig_to_string d =
  let b = Buffer.create 32 in
  desig_to_buf b d;
  Buffer.contents b

(** {1 Statements} *)

type writer = {
  buf : Buffer.t;
  mutable indent : int;
}

let line w fmt =
  Format.kasprintf
    (fun s ->
      buf_add w.buf (String.make (2 * w.indent) ' ');
      buf_add w.buf s;
      buf_add w.buf "\n")
    fmt

let omp_clause_string (d : omp_do) =
  let b = Buffer.create 64 in
  if d.omp_private <> [] then
    buf_add b (" private(" ^ String.concat ", " d.omp_private ^ ")");
  if d.omp_firstprivate <> [] then
    buf_add b (" firstprivate(" ^ String.concat ", " d.omp_firstprivate ^ ")");
  if d.omp_shared <> [] then
    buf_add b (" shared(" ^ String.concat ", " d.omp_shared ^ ")");
  List.iter
    (fun (op, names) ->
      let ops =
        match op with Osum -> "+" | Oprod -> "*" | Omax -> "max" | Omin -> "min"
      in
      buf_add b (" reduction(" ^ ops ^ ":" ^ String.concat ", " names ^ ")"))
    d.omp_reduction;
  if d.omp_collapse > 1 then
    buf_add b (Printf.sprintf " collapse(%d)" d.omp_collapse);
  (match d.omp_num_threads with
  | Some e -> buf_add b (" num_threads(" ^ expr_to_string e ^ ")")
  | None -> ());
  (match d.omp_schedule with
  | Some Static -> buf_add b " schedule(static)"
  | Some (Static_chunk k) -> buf_add b (Printf.sprintf " schedule(static, %d)" k)
  | Some (Dynamic k) -> buf_add b (Printf.sprintf " schedule(dynamic, %d)" k)
  | Some (Guided 1) -> buf_add b " schedule(guided)"
  | Some (Guided k) -> buf_add b (Printf.sprintf " schedule(guided, %d)" k)
  | None -> ());
  if d.omp_copyprivate <> [] then
    buf_add b (" copyprivate(" ^ String.concat ", " d.omp_copyprivate ^ ")");
  Buffer.contents b

let rec stmt_to_buf w s =
  match s with
  | Assign (d, e) -> line w "%s = %s" (desig_to_string d) (expr_to_string e)
  | If_arith (c, s) -> line w "if (%s) %s" (expr_to_string c) (inline_stmt s)
  | If_block (branches, else_) ->
    List.iteri
      (fun i (c, body) ->
        if i = 0 then line w "if (%s) then" (expr_to_string c)
        else line w "else if (%s) then" (expr_to_string c);
        indented w body)
      branches;
    if else_ <> [] then begin
      line w "else";
      indented w else_
    end;
    line w "end if"
  | Do l ->
    (match l.do_omp with
    | Some d -> line w "!$omp parallel do%s" (omp_clause_string d)
    | None -> ());
    let step =
      match l.do_step with
      | Some e -> ", " ^ expr_to_string e
      | None -> ""
    in
    line w "do %s = %s, %s%s" l.do_var (expr_to_string l.do_lo)
      (expr_to_string l.do_hi) step;
    indented w l.do_body;
    line w "end do";
    (match l.do_omp with
    | Some _ -> line w "!$omp end parallel do"
    | None -> ())
  | Do_while (c, body) ->
    line w "do while (%s)" (expr_to_string c);
    indented w body;
    line w "end do"
  | Call (name, args) ->
    if args = [] then line w "call %s()" name
    else
      line w "call %s(%s)" name
        (String.concat ", " (List.map expr_to_string args))
  | Return -> line w "return"
  | Exit -> line w "exit"
  | Cycle -> line w "cycle"
  | Continue -> line w "continue"
  | Stop None -> line w "stop"
  | Stop (Some m) -> line w "stop '%s'" m
  | Allocate allocs ->
    let one (d, exprs) =
      Printf.sprintf "%s(%s)" (desig_to_string d)
        (String.concat ", " (List.map expr_to_string exprs))
    in
    line w "allocate(%s)" (String.concat ", " (List.map one allocs))
  | Deallocate ds ->
    line w "deallocate(%s)" (String.concat ", " (List.map desig_to_string ds))
  | Print args ->
    if args = [] then line w "print *"
    else
      line w "print *, %s" (String.concat ", " (List.map expr_to_string args))
  | Omp_atomic s ->
    line w "!$omp atomic";
    stmt_to_buf w s
  | Omp_critical body ->
    line w "!$omp critical";
    indented w body;
    line w "!$omp end critical"
  | Omp_barrier -> line w "!$omp barrier"
  | Comment c -> line w "! %s" c

and inline_stmt s =
  match s with
  | Assign (d, e) -> Printf.sprintf "%s = %s" (desig_to_string d) (expr_to_string e)
  | Return -> "return"
  | Exit -> "exit"
  | Cycle -> "cycle"
  | Stop None -> "stop"
  | Stop (Some m) -> Printf.sprintf "stop '%s'" m
  | Call (name, args) ->
    Printf.sprintf "call %s(%s)" name
      (String.concat ", " (List.map expr_to_string args))
  | _ -> invalid_arg "inline_stmt: not a simple statement"

and indented w body =
  w.indent <- w.indent + 1;
  List.iter (stmt_to_buf w) body;
  w.indent <- w.indent - 1

(** {1 Declarations} *)

let base_type_str = function
  | Integer -> "integer"
  | Real -> "real"
  | Real8 -> "real*8"
  | Logical -> "logical"
  | Character None -> "character(len=*)"
  | Character (Some n) -> Printf.sprintf "character(len=%d)" n
  | Derived name -> Printf.sprintf "type(%s)" name

let dims_str dims =
  let one (lo, hi) =
    match lo with
    | Some lo -> expr_to_string lo ^ ":" ^ expr_to_string hi
    | None -> expr_to_string hi
  in
  "(" ^ String.concat ", " (List.map one dims) ^ ")"

let deferred_str rank = "(" ^ String.concat ", " (List.init rank (fun _ -> ":")) ^ ")"

let attr_str = function
  | Dimension dims -> "dimension" ^ dims_str dims
  | Allocatable -> "allocatable"
  | Save -> "save"
  | Parameter -> "parameter"
  | Intent_in -> "intent(in)"
  | Intent_out -> "intent(out)"
  | Intent_inout -> "intent(inout)"
  | Pointer -> "pointer"
  | Target -> "target"

let entity_str e =
  let b = Buffer.create 32 in
  buf_add b e.ent_name;
  (match (e.ent_deferred, e.ent_dims) with
  | Some rank, _ -> buf_add b (deferred_str rank)
  | None, Some dims -> buf_add b (dims_str dims)
  | None, None -> ());
  (match e.ent_init with
  | Some init ->
    buf_add b " = ";
    buf_add b (expr_to_string init)
  | None -> ());
  Buffer.contents b

let rec decl_to_buf w d =
  match d with
  | Var_decl { base; attrs; entities } ->
    let attrs_s =
      String.concat "" (List.map (fun a -> ", " ^ attr_str a) attrs)
    in
    line w "%s%s :: %s" (base_type_str base) attrs_s
      (String.concat ", " (List.map entity_str entities))
  | Type_def { type_name; fields } ->
    line w "type :: %s" type_name;
    w.indent <- w.indent + 1;
    List.iter (decl_to_buf w) fields;
    w.indent <- w.indent - 1;
    line w "end type %s" type_name
  | Common (block, names) ->
    line w "common /%s/ %s" block (String.concat ", " names)
  | Use (m, []) -> line w "use %s" m
  | Use (m, only) -> line w "use %s, only: %s" m (String.concat ", " only)
  | Implicit_none -> line w "implicit none"
  | External names -> line w "external %s" (String.concat ", " names)
  | Decl_comment c -> line w "! %s" c

(** {1 Program units} *)

let subprogram_to_buf w (sp : subprogram) =
  let args = String.concat ", " sp.sub_args in
  (match sp.sub_kind with
  | `Subroutine -> line w "subroutine %s(%s)" sp.sub_name args
  | `Function (Some t) ->
    line w "%s function %s(%s)" (base_type_str t) sp.sub_name args
  | `Function None -> line w "function %s(%s)" sp.sub_name args);
  w.indent <- w.indent + 1;
  List.iter (decl_to_buf w) sp.sub_decls;
  List.iter (stmt_to_buf w) sp.sub_body;
  w.indent <- w.indent - 1;
  (match sp.sub_kind with
  | `Subroutine -> line w "end subroutine %s" sp.sub_name
  | `Function _ -> line w "end function %s" sp.sub_name)

let unit_to_buf w u =
  match u with
  | Module { mod_name; mod_decls; mod_contains } ->
    line w "module %s" mod_name;
    w.indent <- w.indent + 1;
    List.iter (decl_to_buf w) mod_decls;
    w.indent <- w.indent - 1;
    if mod_contains <> [] then begin
      line w "contains";
      w.indent <- w.indent + 1;
      List.iteri
        (fun i sp ->
          if i > 0 then buf_add w.buf "\n";
          subprogram_to_buf w sp)
        mod_contains;
      w.indent <- w.indent - 1
    end;
    line w "end module %s" mod_name
  | Standalone sp -> subprogram_to_buf w sp
  | Main { main_name; main_decls; main_body } ->
    line w "program %s" main_name;
    w.indent <- w.indent + 1;
    List.iter (decl_to_buf w) main_decls;
    List.iter (stmt_to_buf w) main_body;
    w.indent <- w.indent - 1;
    line w "end program %s" main_name

(** Render a compilation unit to free-form Fortran source. *)
let to_string (cu : compilation_unit) =
  let w = { buf = Buffer.create 4096; indent = 0 } in
  List.iteri
    (fun i u ->
      if i > 0 then buf_add w.buf "\n";
      unit_to_buf w u)
    cu;
  Buffer.contents w.buf

let stmt_to_string s =
  let w = { buf = Buffer.create 256; indent = 0 } in
  stmt_to_buf w s;
  Buffer.contents w.buf
