(** Analytic cost evaluator over the Fortran AST.

    Walks a subprogram with a machine model ({!Machine}), a compiler
    model ({!Compiler_model}) and a workload binding (values for the
    symbolic loop bounds) and returns a deterministic time estimate.
    Serial loops receive the compiler's memset/SIMD/unroll speedups;
    OpenMP loops instead pay fork-join and per-thread overheads and
    divide their (scalar) body cost by the machine's thread speedup.
    Nested parallel regions pay their overhead but gain nothing —
    the cores are already busy — which is what buries FUN3D's
    fine-grained options in Fig. 7. *)

open Glaf_fortran

type config = {
  machine : Machine.t;
  threads : int;  (** default OMP thread count *)
  bindings : (string * int) list;  (** workload sizes for symbolic bounds *)
  while_trip : int;  (** assumed iterations of DO WHILE loops *)
  unknown_trip : int;  (** trip count when a bound cannot be evaluated *)
}

let default_config machine =
  {
    machine;
    threads = machine.Machine.cores;
    bindings = [];
    while_trip = 4;
    unknown_trip = 16;
  }

type env = {
  cfg : config;
  cu : Ast.compilation_unit;
  ints : (string, int) Hashtbl.t;  (** integer-valued scalars in scope *)
  par_depth : int;  (** nesting depth of enclosing parallel regions *)
  depth_guard : int;  (** recursion limiter for call chains *)
}

(** {1 Integer evaluation of bound expressions} *)

let rec eval_int env (e : Ast.expr) : int option =
  match e with
  | Ast.Int_lit n -> Some n
  | Ast.Real_lit (x, _) -> Some (int_of_float x)
  | Ast.Desig [ (name, []) ] -> Hashtbl.find_opt env.ints name
  | Ast.Unop (Ast.Neg, a) -> Option.map (fun n -> -n) (eval_int env a)
  | Ast.Unop (Ast.Pos, a) -> eval_int env a
  | Ast.Binop (op, a, b) -> (
    match (eval_int env a, eval_int env b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | _ -> None)
    | _ -> None)
  | Ast.Desig [ ("max", [ a; b ]) ] -> (
    match (eval_int env a, eval_int env b) with
    | Some x, Some y -> Some (max x y)
    | _ -> None)
  | Ast.Desig [ ("min", [ a; b ]) ] -> (
    match (eval_int env a, eval_int env b) with
    | Some x, Some y -> Some (min x y)
    | _ -> None)
  | _ -> None

let trip_count env (l : Ast.do_loop) : int =
  match (eval_int env l.Ast.do_lo, eval_int env l.Ast.do_hi) with
  | Some lo, Some hi ->
    let step =
      match l.Ast.do_step with
      | None -> 1
      | Some s -> Option.value (eval_int env s) ~default:1
    in
    if step = 0 then env.cfg.unknown_trip
    else max 0 (((hi - lo) / step) + 1)
  | _ -> env.cfg.unknown_trip

(** {1 Expression cost} *)

(* Small leaf subprograms (the shape the bytecode compiler inlines —
   see {!Glaf_interp.Bytecode.leaf_shape}) are also the shape any
   optimizing Fortran compiler inlines at -O2: no frame is built, so
   the model charges only the inlined body, not [call_ns].  Using the
   interpreter's predicate keeps one source of truth for the policy. *)
let is_leaf (sp : Ast.subprogram) : bool =
  Glaf_interp.Bytecode.leaf_shape sp <> None

let rec expr_cost env (e : Ast.expr) : float =
  let m = env.cfg.machine in
  match e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ -> 0.0
  | Ast.Desig parts ->
    List.fold_left
      (fun acc (name, args) ->
        let arg_cost =
          List.fold_left (fun a x -> a +. expr_cost env x) 0.0 args
        in
        if args = [] then acc +. m.Machine.mem_ns
        else
          match Ast.find_subprogram env.cu name with
          | Some sp when env.depth_guard > 0 ->
            let frame = if is_leaf sp then 0.0 else m.Machine.call_ns in
            acc +. arg_cost +. frame
            +. subprogram_cost
                 { env with depth_guard = env.depth_guard - 1 }
                 sp args
          | _ ->
            (* array element access or intrinsic *)
            acc +. arg_cost
            +. (m.Machine.mem_ns *. 1.0)
            +. (m.Machine.op_ns *. 2.0))
      0.0 parts
  | Ast.Unop (_, a) -> env.cfg.machine.Machine.op_ns +. expr_cost env a
  | Ast.Binop (Ast.Pow, a, b) ->
    (8.0 *. m.Machine.op_ns) +. expr_cost env a +. expr_cost env b
  | Ast.Binop (_, a, b) ->
    m.Machine.op_ns +. expr_cost env a +. expr_cost env b
  | Ast.Implied_do (a, _, lo, hi) ->
    let n =
      match (eval_int env lo, eval_int env hi) with
      | Some l, Some h -> max 0 (h - l + 1)
      | _ -> env.cfg.unknown_trip
    in
    float_of_int n *. expr_cost env a
  | Ast.Section (lo, hi) ->
    Option.fold ~none:0.0 ~some:(expr_cost env) lo
    +. Option.fold ~none:0.0 ~some:(expr_cost env) hi

(** {1 Statement cost} *)

and stmts_cost env stmts =
  List.fold_left (fun acc s -> acc +. stmt_cost env s) 0.0 stmts

and stmt_cost env (s : Ast.stmt) : float =
  let m = env.cfg.machine in
  match s with
  | Ast.Assign (d, e) ->
    expr_cost env (Ast.Desig d) +. expr_cost env e +. m.Machine.op_ns
  | Ast.If_arith (c, s) -> expr_cost env c +. (0.5 *. stmt_cost env s)
  | Ast.If_block (branches, else_) ->
    (* the no-reallocation guard `if (.not. allocated(x)) allocate(..)`
       is true once and false on every later call: amortize its body *)
    let is_alloc_guard c =
      match c with
      | Ast.Unop (Ast.Not, Ast.Desig [ ("allocated", _) ]) -> true
      | _ -> false
    in
    let nb = List.length branches + if else_ = [] then 0 else 1 in
    let w = 1.0 /. float_of_int (max 1 nb) in
    List.fold_left
      (fun acc (c, body) ->
        let w = if is_alloc_guard c then 0.02 else w in
        acc +. expr_cost env c +. (w *. stmts_cost env body))
      (w *. stmts_cost env else_)
      branches
  | Ast.Do l -> loop_cost env l
  | Ast.Do_while (c, body) ->
    float_of_int env.cfg.while_trip
    *. (expr_cost env c +. stmts_cost env body)
  | Ast.Call (name, args) -> (
    let arg_cost = List.fold_left (fun a x -> a +. expr_cost env x) 0.0 args in
    match Ast.find_subprogram env.cu name with
    | Some sp when env.depth_guard > 0 ->
      let frame = if is_leaf sp then 0.0 else m.Machine.call_ns in
      arg_cost +. frame
      +. subprogram_cost { env with depth_guard = env.depth_guard - 1 } sp args
    | _ -> arg_cost +. m.Machine.call_ns)
  | Ast.Return | Ast.Exit | Ast.Cycle | Ast.Continue | Ast.Stop _ ->
    m.Machine.op_ns
  | Ast.Allocate allocs ->
    List.fold_left
      (fun acc (_, dims) ->
        let n =
          List.fold_left
            (fun acc d ->
              match d with
              | Ast.Section (_, Some hi) | (_ as hi) when true -> (
                match eval_int env hi with
                | Some k -> acc * max 1 k
                | None -> acc * env.cfg.unknown_trip)
              | _ -> acc)
            1 dims
        in
        (* heap allocation inside a parallel region contends on the
           allocator lock — the effect that buries FUN3D's
           fine-grained options before the SAVE fix *)
        let contention =
          if env.par_depth > 0 then
            1.0 +. (0.5 *. float_of_int env.cfg.threads)
          else 1.0
        in
        acc
        +. (m.Machine.alloc_ns *. contention)
        +. (0.05 *. float_of_int n))
      0.0 allocs
  | Ast.Deallocate ds -> float_of_int (List.length ds) *. (m.Machine.alloc_ns /. 3.0)
  | Ast.Print _ -> 200.0
  | Ast.Omp_atomic s -> (40.0 *. m.Machine.op_ns) +. stmt_cost env s
  | Ast.Omp_critical body -> (60.0 *. m.Machine.op_ns) +. stmts_cost env body
  | Ast.Omp_barrier -> m.Machine.per_thread_ns
  | Ast.Comment _ -> 0.0

(* Bind the loop variable to the midpoint of its range so that
   bounds depending on it (windowed inner loops like
   [do j = k, min(k+19, nv)]) cost representatively. *)
and env_with_midpoint env (l : Ast.do_loop) =
  match (eval_int env l.Ast.do_lo, eval_int env l.Ast.do_hi) with
  | Some lo, Some hi when hi >= lo ->
    let ints = Hashtbl.copy env.ints in
    Hashtbl.replace ints l.Ast.do_var ((lo + hi) / 2);
    { env with ints }
  | _ -> env

and loop_cost env (l : Ast.do_loop) : float =
  let m = env.cfg.machine in
  let trip = trip_count env l in
  match l.Ast.do_omp with
  | None ->
    (* serial: compiler optimizations apply *)
    let is_user_fn name =
      (* Branch-free leaf callees are inlined away before
         vectorization, so they don't demote a loop to scalar code.
         A leaf whose body branches still inlines (no call_ns above)
         but the inlined IF blocks vectorization, same as writing the
         branch in the loop body directly. *)
      match Ast.find_subprogram env.cu name with
      | Some sp ->
        (not (is_leaf sp))
        || List.exists
             (function
               | Ast.If_block _ | Ast.If_arith _ -> true
               | _ -> false)
             sp.Ast.sub_body
      | None -> false
    in
    let opt = Compiler_model.classify ~trip:(Some trip) ~is_user_fn l in
    let body = stmts_cost (env_with_midpoint env l) l.Ast.do_body in
    let factor = Compiler_model.speedup m opt in
    float_of_int trip *. ((body /. factor) +. m.Machine.op_ns)
  | Some d ->
    (* OpenMP: outlined body runs scalar; fork-join + per-thread costs.
       A nested region (par_depth > 0) behaves like OMP_NESTED=false:
       a cheap runtime check, serial execution, no gain. *)
    let threads =
      match d.Ast.omp_num_threads with
      | Some e -> Option.value (eval_int env e) ~default:env.cfg.threads
      | None -> env.cfg.threads
    in
    let total_trip, body_stmts, bind_inner =
      if d.Ast.omp_collapse >= 2 then
        match l.Ast.do_body with
        | [ Ast.Do inner ] ->
          ( trip * trip_count env inner,
            inner.Ast.do_body,
            fun env -> env_with_midpoint env inner )
        | body -> (trip, body, Fun.id)
      else (trip, l.Ast.do_body, Fun.id)
    in
    let inner_env =
      { (bind_inner (env_with_midpoint env l)) with
        par_depth = env.par_depth + 1 }
    in
    let body = stmts_cost inner_env body_stmts in
    if env.par_depth > 0 then
      (0.5 *. m.Machine.per_thread_ns)
      +. (float_of_int total_trip *. (body +. m.Machine.op_ns))
    else begin
      (* parallelism cannot exceed the iteration count (the 2-iteration
         outer loop of a non-collapsed nest starves the team) *)
      let speedup =
        Float.min
          (Machine.thread_speedup m threads)
          (float_of_int (max 1 total_trip))
      in
      let work =
        float_of_int total_trip *. (body +. m.Machine.op_ns) /. speedup
      in
      let sched = 0.3 *. m.Machine.per_thread_ns *. float_of_int threads in
      (* The SCHEDULE clause decides how many chunks the runtime
         dispatches.  The default static schedule deals one contiguous
         block per thread; every chunk beyond that — dynamic/guided
         pulls from the shared counter, static,k round-robin deals —
         pays [chunk_ns].  This is what makes schedule(dynamic,1) on a
         large trip count rank measurably worse than static, and what
         the variant autotuner prunes its search with. *)
      let dispatches =
        let ceil_div a b = (a + b - 1) / max 1 b in
        match d.Ast.omp_schedule with
        | None | Some Ast.Static -> threads
        | Some (Ast.Static_chunk k) -> ceil_div total_trip (max 1 k)
        | Some (Ast.Dynamic k) -> ceil_div total_trip (max 1 k)
        | Some (Ast.Guided k) ->
          List.length
            (Glaf_runtime.Sched.guided_chunk_sizes ~total:total_trip
               ~team:threads ~min_chunk:(max 1 k))
      in
      let dispatch_cost =
        m.Machine.chunk_ns *. float_of_int (max 0 (dispatches - threads))
      in
      Machine.region_overhead m threads +. sched +. dispatch_cost +. work
    end

(** {1 Subprograms} *)

and subprogram_cost env (sp : Ast.subprogram) (actuals : Ast.expr list) :
    float =
  (* bind integer-valued actuals to dummy names, plus PARAMETER decls *)
  let ints = Hashtbl.copy env.ints in
  List.iteri
    (fun i dummy ->
      match List.nth_opt actuals i with
      | Some a -> (
        match eval_int env a with
        | Some v -> Hashtbl.replace ints dummy v
        | None -> ())
      | None -> ())
    sp.Ast.sub_args;
  List.iter
    (fun d ->
      match d with
      | Ast.Var_decl { entities; _ } ->
        List.iter
          (fun (e : Ast.entity) ->
            match e.Ast.ent_init with
            | Some ie -> (
              match eval_int { env with ints } ie with
              | Some v -> Hashtbl.replace ints e.Ast.ent_name v
              | None -> ())
            | None -> ())
          entities
      | _ -> ())
    sp.Ast.sub_decls;
  stmts_cost { env with ints } sp.Ast.sub_body

(** Estimated time (ns) of calling [name] with integer bindings from
    the config plus [args]. *)
let time ?(args = []) (cfg : config) (cu : Ast.compilation_unit) name : float =
  let ints = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace ints k v) cfg.bindings;
  (* module-level PARAMETER constants *)
  List.iter
    (fun u ->
      match u with
      | Ast.Module m ->
        List.iter
          (fun d ->
            match d with
            | Ast.Var_decl { entities; _ } ->
              List.iter
                (fun (e : Ast.entity) ->
                  match e.Ast.ent_init with
                  | Some (Ast.Int_lit v) -> Hashtbl.replace ints e.Ast.ent_name v
                  | _ -> ())
                entities
            | _ -> ())
          m.Ast.mod_decls
      | _ -> ())
    cu;
  let env = { cfg; cu; ints; par_depth = 0; depth_guard = 24 } in
  match Ast.find_subprogram cu name with
  | None -> invalid_arg ("Cost.time: no subprogram " ^ name)
  | Some sp -> subprogram_cost env sp args
