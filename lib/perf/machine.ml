(** Machine model for the analytic performance evaluation.

    Stands in for the paper's test systems.  Constants are calibrated
    so the {e shape} of the paper's figures reproduces (who wins, by
    roughly what factor, where the crossovers are); absolute times are
    not meaningful.  All times are in nanoseconds. *)

type t = {
  name : string;
  cores : int;  (** physical cores *)
  smt_threads : int;  (** hardware threads (logical CPUs) *)
  smt_gain : float;
      (** extra throughput from running 2 threads on one core (e.g.
          0.25 = 25% more than one thread) *)
  oversub_penalty : float;
      (** slowdown factor per software thread beyond [smt_threads]
          (scheduling, cache thrash) *)
  op_ns : float;  (** scalar floating-point / integer op *)
  mem_ns : float;  (** array element access *)
  call_ns : float;  (** subprogram call overhead (GLAF serial tax, §4.1.2) *)
  alloc_ns : float;  (** heap allocation (the FUN3D reallocation tax) *)
  fork_join_ns : float;  (** OpenMP parallel-region entry/exit *)
  per_thread_ns : float;  (** per-thread start/synchronize cost *)
  simd_width : int;  (** double-precision lanes *)
  simd_efficiency : float;  (** achieved fraction of the ideal lane speedup *)
  memset_speedup : float;  (** speedup of a compiler-emitted memset over the scalar loop *)
  unroll_speedup : float;  (** speedup from unrolling very short loops *)
  chunk_ns : float;
      (** per-chunk dispatch cost of a chunked OpenMP schedule
          ([schedule(dynamic,k)] pulls, [guided] decay pulls, extra
          [static,k] round-robin chunks beyond one block per thread).
          The default static schedule deals one contiguous block per
          thread and pays nothing here. *)
}

(** 4-core desktop in the SARB evaluation (§4.1.2): Intel Core
    i5-2400-class, 3.1 GHz, gfortran -O3.  The paper reports up to 8
    logical threads on this machine; oversubscription beyond 4 physical
    cores collapses performance (their Fig. 6: 0.70x at 8T). *)
let i5_2400 =
  {
    name = "Core i5-2400 (4C, gfortran -O3)";
    cores = 4;
    smt_threads = 4;
    smt_gain = 0.0;
    oversub_penalty = 1.15;
    op_ns = 0.65;
    mem_ns = 0.9;
    call_ns = 38.0;
    alloc_ns = 120.0;
    fork_join_ns = 8000.0;
    per_thread_ns = 900.0;
    simd_width = 4;
    simd_efficiency = 0.55;
    memset_speedup = 7.0;
    unroll_speedup = 1.4;
    chunk_ns = 55.0;
  }

(** Dual-socket Xeon E5-2637 v4 node in the FUN3D evaluation (§4.2.2):
    2 x 4 cores / 8 threads, 3.5 GHz, ifort -O3 -axCORE-AVX2. *)
let xeon_e5_2637v4 =
  {
    name = "2x Xeon E5-2637 v4 (8C/16T, ifort -O3 AVX2)";
    cores = 8;
    smt_threads = 16;
    smt_gain = 0.08;
    oversub_penalty = 0.45;
    op_ns = 0.5;
    mem_ns = 0.8;
    call_ns = 25.0;
    alloc_ns = 420.0;
    fork_join_ns = 2200.0;
    per_thread_ns = 420.0;
    simd_width = 4;
    simd_efficiency = 0.6;
    memset_speedup = 8.0;
    unroll_speedup = 1.5;
    chunk_ns = 40.0;
  }

(** Profile of {e this} host running the tree-walk/bytecode
    interpreter — the machine the variant autotuner ({!Glaf_tune})
    actually measures on.  Per-op constants are interpreter-scale
    (two orders of magnitude above compiled code) and the
    parallel-region / per-chunk costs reflect the domain pool's
    measured dispatch overhead, so the model ranks schedule variants
    the way interpreter wall clock does; compiler loop optimizations
    do not apply to an interpreter, so the serial speedup factors are
    all 1. *)
let interp_host ?cores () =
  let cores =
    match cores with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  {
    name = Printf.sprintf "interpreter host (%d cores)" cores;
    cores;
    smt_threads = cores;
    smt_gain = 0.0;
    oversub_penalty = 1.0;
    op_ns = 45.0;
    mem_ns = 60.0;
    call_ns = 400.0;
    alloc_ns = 800.0;
    fork_join_ns = 9000.0;
    per_thread_ns = 2500.0;
    simd_width = 1;
    simd_efficiency = 1.0;
    memset_speedup = 1.0;
    unroll_speedup = 1.0;
    chunk_ns = 3500.0;
  }

(** Parallel speedup available from [t] software threads: linear to
    the core count, SMT gain up to the hardware thread count, then a
    penalty for oversubscription.  Never below 0.1. *)
let thread_speedup m t =
  let t = max 1 t in
  (* real OpenMP loops never scale perfectly: ~85% incremental
     efficiency per added core *)
  let eff n = 1.0 +. (0.85 *. float_of_int (n - 1)) in
  let base =
    if t <= m.cores then eff t
    else if t <= m.smt_threads then
      eff m.cores +. (m.smt_gain *. float_of_int (t - m.cores))
    else
      let hw = eff m.cores +. (m.smt_gain *. float_of_int (m.smt_threads - m.cores)) in
      hw /. (1.0 +. (m.oversub_penalty *. float_of_int (t - m.smt_threads)))
  in
  Float.max 0.1 base

(** Cost of entering+leaving a parallel region with [t] threads. *)
let region_overhead m t =
  m.fork_join_ns +. (m.per_thread_ns *. float_of_int (max 1 t))
