(** The typed builder API: a programmatic stand-in for the paper's
    HTML5 graphical programming interface.

    Every GPI interaction (create a program, add a module, start a
    function, declare grids — including the §3 integration surface —
    open a step, append a formula) has one mutating entry point here.
    Program assembly is order-preserving: modules, functions, params,
    grids, steps and statements appear in the IR exactly in the order
    the corresponding actions were issued, just as the GPI records
    them.

    {!finish} closes the session and runs the structural validation
    the GPI would have enforced interactively ({!Glaf_ir.Validate});
    any violation raises {!Build_error}. *)

open Glaf_ir

exception Build_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Build_error s)) fmt

(* Accumulators are kept in reverse order and flipped in [finish]. *)

type step_b = {
  s_label : string;
  mutable s_stmts : Stmt.t list;
}

type func_b = {
  f_name : string;
  f_return : Types.elem_type option;
  mutable f_params : string list;
  mutable f_grids : Grid.t list;
  mutable f_steps : step_b list;
}

type module_b = {
  m_name : string;
  mutable m_grids : Grid.t list;
  mutable m_funcs : func_b list;
}

type t = {
  prog_name : string;
  mutable globals : Grid.t list;
  mutable modules : module_b list;
  mutable entry : string option;
}

let create prog_name = { prog_name; globals = []; modules = []; entry = None }

let current_module b action =
  match b.modules with
  | m :: _ -> m
  | [] -> fail "%s: no module started (call add_module first)" action

let current_function b action =
  let m = current_module b action in
  match m.m_funcs with
  | f :: _ -> f
  | [] -> fail "%s: no function started (call start_function first)" action

let current_step b action =
  let f = current_function b action in
  match f.f_steps with
  | s :: _ -> s
  | [] -> fail "%s: no step started (call start_step first)" action

(** Add a grid to the program's Global Scope. *)
let add_global b (g : Grid.t) = b.globals <- g :: b.globals

let add_module b name =
  b.modules <- { m_name = name; m_grids = []; m_funcs = [] } :: b.modules

(** Declare a module-scope grid (§3.3) in the current module.  The
    grid's storage class is coerced to [Module_scope]. *)
let add_module_grid b (g : Grid.t) =
  let m = current_module b "add_module_grid" in
  m.m_grids <- { g with Grid.storage = Grid.Module_scope } :: m.m_grids

(** Start a function in the current module.  [?return] absent means a
    void return type, generated as a Fortran [SUBROUTINE] (§3.4). *)
let start_function b ?return name =
  let m = current_module b "start_function" in
  m.m_funcs <-
    { f_name = name; f_return = return; f_params = []; f_grids = []; f_steps = [] }
    :: m.m_funcs

(** Declare the next dummy argument of the current function.  The
    grid's storage class is coerced to [Arg] at the next free
    position, mirroring the GPI's ordered parameter list. *)
let add_param b (g : Grid.t) =
  let f = current_function b "add_param" in
  let g = { g with Grid.storage = Grid.Arg (List.length f.f_params) } in
  f.f_params <- g.Grid.name :: f.f_params;
  f.f_grids <- g :: f.f_grids

(** Declare a grid visible in the current function (any storage
    class: local, module-scope reference, external module, TYPE
    element, COMMON member). *)
let add_grid b (g : Grid.t) =
  let f = current_function b "add_grid" in
  f.f_grids <- g :: f.f_grids

(** Open a new step (the GPI's unit of editing) in the current
    function. *)
let start_step b label =
  let f = current_function b "start_step" in
  f.f_steps <- { s_label = label; s_stmts = [] } :: f.f_steps

(** Append a statement to the current step. *)
let add_stmt b stmt =
  let s = current_step b "add_stmt" in
  s.s_stmts <- stmt :: s.s_stmts

(** Mark the program entry point. *)
let set_entry b name = b.entry <- Some name

(** {1 Storage helpers for the §3 integration surface} *)

(** Re-home a grid into legacy module [module_name] (§3.1, emitted via
    [USE]); with [?type_var] it becomes an element of that existing
    [TYPE] variable instead (§3.5, referenced as [type_var%name]). *)
let grid_from_module ~module_name ?type_var (g : Grid.t) =
  let storage =
    match type_var with
    | Some v -> Grid.Type_element (module_name, v)
    | None -> Grid.External_module module_name
  in
  { g with Grid.storage }

(** Re-home a grid into COMMON block [block] (§3.2). *)
let grid_in_common ~block (g : Grid.t) =
  { g with Grid.storage = Grid.Common block }

(** {1 Assembly} *)

let assemble b : Ir_module.program =
  let build_step (s : step_b) = Func.step s.s_label (List.rev s.s_stmts) in
  let build_func (f : func_b) =
    Func.make ?return:f.f_return
      ~params:(List.rev f.f_params)
      ~grids:(List.rev f.f_grids)
      ~steps:(List.rev_map build_step f.f_steps)
      f.f_name
  in
  let build_module (m : module_b) =
    Ir_module.make
      ~module_grids:(List.rev m.m_grids)
      ~functions:(List.rev_map build_func m.m_funcs)
      m.m_name
  in
  Ir_module.program
    ~globals:(List.rev b.globals)
    ~modules:(List.rev_map build_module b.modules)
    ?entry:b.entry b.prog_name

(** Close the building session: assemble the IR program and validate
    it structurally, raising {!Build_error} on any violation the GPI
    would have prevented interactively. *)
let finish b : Ir_module.program =
  let p = assemble b in
  match Validate.program p with
  | [] -> p
  | errors ->
    fail "invalid program %S: %s" b.prog_name
      (String.concat "; " (List.map Validate.error_to_string errors))
