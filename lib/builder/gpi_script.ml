(** The GPI action-script front-end.

    A [.gpi] script is a line-oriented, textual replay of the GUI
    interaction sequence of the paper's Figs. 2–4: each line is one
    action (create a program/module/function, declare a grid —
    possibly living in an existing module, TYPE variable or COMMON
    block — open a step, set a formula, open an index range).  The
    grammar, one action per line:

    {v
    program <name>
    globalgrid <name> <type> [clauses]
    module <name>
    modulegrid <name> <type> [clauses]
    function <name> returns <type|void>
      param <name> <type> [dims(<extent>,...)]
      grid <name> <type> [clauses]
      step <label>
        set <grid>[(<indices>)] = <expr>
        foreach <index> = <lo>, <hi> [, <step>]  ... end foreach
        while <cond>                             ... end while
        if <cond> / elseif <cond> / else         ... end if
        call <name>[(<args>)]
        return [<expr>]
        exit | cycle
    end program
    v}

    Grid clauses: [dims(e1,...)] ([Fixed] for integers, [Sym] for
    identifiers), [save], [allocatable], [init <number>|zero],
    [usemodule <m>] (§3.1), [usemodule <m> typevar <v>] (§3.5),
    [common <b>] (§3.2).  Types: [integer], [real], [real8],
    [logical], [string]; a [void] return makes a SUBROUTINE (§3.4).
    Lines starting with [!] or [#] are comments.

    Every error carries the 1-based line number of the offending
    action. *)

open Glaf_ir

exception Script_error of int * string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Script_error (line, s))) fmt

(* --- tokens ------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tint of int
  | Treal of float
  | Top of string

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ln s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_id_start c then begin
      let j = ref !i in
      while !j < n && is_id_char s.[!j] do
        incr j
      done;
      toks := Tid (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else if is_digit c then begin
      (* integer or real literal: digits [. digits] [eEdD [+-] digits] *)
      let j = ref !i in
      let real = ref false in
      while !j < n && is_digit s.[!j] do
        incr j
      done;
      if !j < n && s.[!j] = '.' then begin
        real := true;
        incr j;
        while !j < n && is_digit s.[!j] do
          incr j
        done
      end;
      if !j < n && (s.[!j] = 'e' || s.[!j] = 'E' || s.[!j] = 'd' || s.[!j] = 'D')
      then begin
        let k = ref (!j + 1) in
        if !k < n && (s.[!k] = '+' || s.[!k] = '-') then incr k;
        if !k < n && is_digit s.[!k] then begin
          real := true;
          j := !k;
          while !j < n && is_digit s.[!j] do
            incr j
          done
        end
      end;
      let text = String.sub s !i (!j - !i) in
      let tok =
        if !real then
          Treal (float_of_string (String.map (function 'd' | 'D' -> 'e' | c -> c) text))
        else
          match int_of_string_opt text with
          | Some v -> Tint v
          | None -> Treal (float_of_string text)
      in
      toks := tok :: !toks;
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "**" | "==" | "/=" | "<=" | ">=" ->
        toks := Top two :: !toks;
        i := !i + 2
      | _ -> (
        match c with
        | '+' | '-' | '*' | '/' | '(' | ')' | ',' | '<' | '>' | '=' | '%' | ':' ->
          toks := Top (String.make 1 c) :: !toks;
          incr i
        | _ -> fail ln "unexpected character %C" c)
    end
  done;
  Array.of_list (List.rev !toks)

let token_text = function
  | Tid s -> s
  | Tint n -> string_of_int n
  | Treal x -> Printf.sprintf "%g" x
  | Top o -> o

(* --- expression parser -------------------------------------------------- *)

(* [lookup] resolves grid names visible at the current script position
   (current function, then module grids, then globals); it decides
   whether [name(...)] is an array reference or a function call, and
   lets us reject subscripts on scalars with a line number. *)
type pstate = {
  toks : token array;
  mutable pos : int;
  line : int;
  lookup : string -> Grid.t option;
}

let peek ps = if ps.pos < Array.length ps.toks then Some ps.toks.(ps.pos) else None

let advance ps = ps.pos <- ps.pos + 1

let expect_op ps op =
  match peek ps with
  | Some (Top o) when o = op -> advance ps
  | Some t -> fail ps.line "expected %S but found %S" op (token_text t)
  | None -> fail ps.line "expected %S but the line ended" op

let expect_ident ps what =
  match peek ps with
  | Some (Tid name) ->
    advance ps;
    name
  | Some t -> fail ps.line "expected %s but found %S" what (token_text t)
  | None -> fail ps.line "expected %s but the line ended" what

let rec parse_expr ps = parse_or ps

and parse_or ps =
  let lhs = ref (parse_and ps) in
  let rec go () =
    match peek ps with
    | Some (Tid "or") ->
      advance ps;
      lhs := Expr.Binop (Expr.Or, !lhs, parse_and ps);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_and ps =
  let lhs = ref (parse_cmp ps) in
  let rec go () =
    match peek ps with
    | Some (Tid "and") ->
      advance ps;
      lhs := Expr.Binop (Expr.And, !lhs, parse_cmp ps);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_cmp ps =
  let lhs = parse_add ps in
  let op =
    match peek ps with
    | Some (Top "==") | Some (Top "=") -> Some Expr.Eq
    | Some (Top "/=") -> Some Expr.Ne
    | Some (Top "<") -> Some Expr.Lt
    | Some (Top "<=") -> Some Expr.Le
    | Some (Top ">") -> Some Expr.Gt
    | Some (Top ">=") -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance ps;
    Expr.Binop (op, lhs, parse_add ps)

and parse_add ps =
  let lhs = ref (parse_mul ps) in
  let rec go () =
    match peek ps with
    | Some (Top "+") ->
      advance ps;
      lhs := Expr.Binop (Expr.Add, !lhs, parse_mul ps);
      go ()
    | Some (Top "-") ->
      advance ps;
      lhs := Expr.Binop (Expr.Sub, !lhs, parse_mul ps);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul ps =
  let lhs = ref (parse_unary ps) in
  let rec go () =
    match peek ps with
    | Some (Top "*") ->
      advance ps;
      lhs := Expr.Binop (Expr.Mul, !lhs, parse_unary ps);
      go ()
    | Some (Top "/") ->
      advance ps;
      lhs := Expr.Binop (Expr.Div, !lhs, parse_unary ps);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary ps =
  match peek ps with
  | Some (Top "-") ->
    advance ps;
    Expr.Unop (Expr.Neg, parse_unary ps)
  | Some (Tid "not") ->
    advance ps;
    Expr.Unop (Expr.Not, parse_unary ps)
  | _ -> parse_power ps

and parse_power ps =
  let base = parse_atom ps in
  match peek ps with
  | Some (Top "**") ->
    advance ps;
    (* right-associative, per Fortran *)
    Expr.Binop (Expr.Pow, base, parse_unary ps)
  | _ -> base

and parse_args ps =
  expect_op ps "(";
  match peek ps with
  | Some (Top ")") ->
    advance ps;
    []
  | _ ->
    let args = ref [ parse_expr ps ] in
    let rec go () =
      match peek ps with
      | Some (Top ",") ->
        advance ps;
        args := parse_expr ps :: !args;
        go ()
      | _ -> ()
    in
    go ();
    expect_op ps ")";
    List.rev !args

and parse_atom ps =
  match peek ps with
  | Some (Tint n) ->
    advance ps;
    Expr.Int_lit n
  | Some (Treal x) ->
    advance ps;
    Expr.Real_lit x
  | Some (Tid "true") ->
    advance ps;
    Expr.Bool_lit true
  | Some (Tid "false") ->
    advance ps;
    Expr.Bool_lit false
  | Some (Tid name) -> (
    advance ps;
    match peek ps with
    | Some (Top "%") ->
      advance ps;
      let field = expect_ident ps "a field name" in
      let indices =
        match peek ps with
        | Some (Top "(") -> parse_args ps
        | _ -> []
      in
      Expr.fld name field indices
    | Some (Top "(") -> (
      let args = parse_args ps in
      match ps.lookup name with
      | Some g ->
        if Grid.is_scalar g && args <> [] then
          fail ps.line
            "grid %S is a scalar (declared without dims) and takes no \
             subscripts"
            name;
        Expr.idx name args
      | None -> Expr.call name args)
    | _ -> Expr.var name)
  | Some (Top "(") ->
    advance ps;
    let e = parse_expr ps in
    expect_op ps ")";
    e
  | Some t -> fail ps.line "expected an expression but found %S" (token_text t)
  | None -> fail ps.line "expected an expression but the line ended"

let parse_whole_expr ps =
  let e = parse_expr ps in
  (match peek ps with
  | Some t -> fail ps.line "trailing %S after expression" (token_text t)
  | None -> ());
  e

(* The [schedule] clause of [foreach]: [static[:<k>]], [chunk:<k>]
   ([static:<k>] is the OpenMP-consistent alias — tuning plans
   serialize that spelling), [dynamic[:<k>]] or [guided[:<k>]],
   mapping to the runtime pool's loop schedules.  [dynamic] or
   [guided] without a chunk mean the OpenMP default chunk/floor
   of 1. *)
let parse_schedule ps =
  let next_is_colon ps =
    ps.pos + 1 < Array.length ps.toks && ps.toks.(ps.pos + 1) = Top ":"
  in
  match peek ps with
  | Some (Tid "static") when not (next_is_colon ps) ->
    advance ps;
    Stmt.Sched_static
  | Some (Tid "dynamic") when not (next_is_colon ps) ->
    advance ps;
    Stmt.Sched_dynamic 1
  | Some (Tid "guided") when not (next_is_colon ps) ->
    advance ps;
    Stmt.Sched_guided 1
  | Some (Tid (("chunk" | "static" | "dynamic" | "guided") as kind)) -> (
    advance ps;
    expect_op ps ":";
    match peek ps with
    | Some (Tint k) when k >= 1 ->
      advance ps;
      (match kind with
      | "chunk" | "static" -> Stmt.Sched_static_chunk k
      | "dynamic" -> Stmt.Sched_dynamic k
      | _ -> Stmt.Sched_guided k)
    | _ -> fail ps.line "schedule %s: expects a positive chunk size" kind)
  | Some t ->
    fail ps.line
      "unknown schedule %S (expected static[:<k>], chunk:<k>, dynamic[:<k>] \
       or guided[:<k>])"
      (token_text t)
  | None ->
    fail ps.line
      "schedule expects static[:<k>], chunk:<k>, dynamic[:<k>] or \
       guided[:<k>]"

(* --- grid declarations -------------------------------------------------- *)

let elem_type ln = function
  | "integer" -> Types.T_int
  | "real" -> Types.T_real
  | "real8" | "double" -> Types.T_real8
  | "logical" -> Types.T_logical
  | "string" -> Types.T_string
  | other -> fail ln "unknown element type %S" other

let parse_dims ps =
  expect_op ps "(";
  let dims = ref [] in
  let rec go () =
    match peek ps with
    | Some (Tint n) ->
      advance ps;
      dims := Grid.dim (Grid.Fixed n) :: !dims;
      sep ()
    | Some (Tid s) ->
      advance ps;
      dims := Grid.dim (Grid.Sym s) :: !dims;
      sep ()
    | Some (Top ")") -> advance ps
    | Some t -> fail ps.line "bad dims entry %S" (token_text t)
    | None -> fail ps.line "unterminated dims(...)"
  and sep () =
    match peek ps with
    | Some (Top ",") ->
      advance ps;
      go ()
    | Some (Top ")") -> advance ps
    | Some t -> fail ps.line "bad dims separator %S" (token_text t)
    | None -> fail ps.line "unterminated dims(...)"
  in
  go ();
  if !dims = [] then
    fail ps.line
      "dims() declares no dimensions — a scalar grid takes no dims clause";
  List.rev !dims

(* [param]/[grid]/[modulegrid]/[globalgrid] share one clause grammar;
   the keyword decides the storage coercion afterwards. *)
let parse_grid_decl ps =
  let name = expect_ident ps "a grid name" in
  let ty = elem_type ps.line (expect_ident ps "an element type") in
  let dims = ref [] in
  let save = ref false in
  let allocatable = ref false in
  let init = ref Grid.No_init in
  let storage = ref Grid.Local in
  let rec clauses () =
    match peek ps with
    | None -> ()
    | Some (Tid "dims") ->
      advance ps;
      dims := parse_dims ps;
      clauses ()
    | Some (Tid "save") ->
      advance ps;
      save := true;
      clauses ()
    | Some (Tid "allocatable") ->
      advance ps;
      allocatable := true;
      clauses ()
    | Some (Tid "init") ->
      advance ps;
      (match peek ps with
      | Some (Tid "zero") ->
        advance ps;
        init := Grid.Zero_init
      | Some (Treal x) ->
        advance ps;
        init := Grid.Const_init x
      | Some (Tint n) ->
        advance ps;
        init := Grid.Const_init (float_of_int n)
      | Some (Top "-") -> (
        advance ps;
        match peek ps with
        | Some (Treal x) ->
          advance ps;
          init := Grid.Const_init (-.x)
        | Some (Tint n) ->
          advance ps;
          init := Grid.Const_init (float_of_int (-n))
        | _ -> fail ps.line "init expects a number or 'zero'")
      | _ -> fail ps.line "init expects a number or 'zero'");
      clauses ()
    | Some (Tid "usemodule") ->
      advance ps;
      let m = expect_ident ps "a module name" in
      storage := Grid.External_module m;
      clauses ()
    | Some (Tid "typevar") ->
      advance ps;
      let v = expect_ident ps "a TYPE variable name" in
      (match !storage with
      | Grid.External_module m -> storage := Grid.Type_element (m, v)
      | _ -> fail ps.line "typevar requires a preceding usemodule clause");
      clauses ()
    | Some (Tid "common") ->
      advance ps;
      let blk = expect_ident ps "a COMMON block name" in
      storage := Grid.Common blk;
      clauses ()
    | Some t -> fail ps.line "unknown grid clause %S" (token_text t)
  in
  clauses ();
  Grid.make ~kind:(Grid.Dense ty) ~dims:!dims ~storage:!storage
    ~allocatable:!allocatable ~save:!save ~init:!init name

(* --- action interpreter -------------------------------------------------- *)

(* Open control-flow blocks; statements accumulate (reversed) in the
   innermost frame until its matching [end]. *)
type frame =
  | F_for of {
      fl : int;
      index : string;
      lo : Expr.t;
      hi : Expr.t;
      fstep : Expr.t;
      fsched : Stmt.sched option;
      mutable body : Stmt.t list;
    }
  | F_while of { fl : int; cond : Expr.t; mutable body : Stmt.t list }
  | F_if of {
      fl : int;
      mutable branches : (Expr.t * Stmt.t list) list;  (* reversed *)
      mutable cond : Expr.t option;  (* None = inside [else] *)
      mutable body : Stmt.t list;
    }

let frame_kind = function
  | F_for _ -> "foreach"
  | F_while _ -> "while"
  | F_if _ -> "if"

let frame_line = function
  | F_for { fl; _ } | F_while { fl; _ } | F_if { fl; _ } -> fl

(** Run a GPI action script and return the validated IR program. *)
let run source : Ir_module.program =
  let b = ref None in
  let builder ln =
    match !b with
    | Some bb -> bb
    | None -> fail ln "the first action must be 'program <name>'"
  in
  let stack = ref [] in
  let finished = ref false in
  let last_line = ref 1 in
  (* resolve a grid name as the script position currently sees it *)
  let lookup name =
    match !b with
    | None -> None
    | Some bb ->
      let find gs =
        List.find_opt (fun (g : Grid.t) -> String.equal g.Grid.name name) gs
      in
      let in_module m =
        let in_func =
          match m.Build.m_funcs with
          | f :: _ -> find f.Build.f_grids
          | [] -> None
        in
        match in_func with
        | Some g -> Some g
        | None -> find m.Build.m_grids
      in
      let local =
        match bb.Build.modules with
        | m :: _ -> in_module m
        | [] -> None
      in
      (match local with
      | Some g -> Some g
      | None -> find bb.Build.globals)
  in
  let pstate ln toks = { toks; pos = 0; line = ln; lookup } in
  (* wrap builder mutations so Build_error gains a line number *)
  let guarded ln f =
    match f () with
    | v -> v
    | exception Build.Build_error msg -> fail ln "%s" msg
  in
  let require_closed ln what =
    match !stack with
    | [] -> ()
    | fr :: _ ->
      fail (frame_line fr) "unterminated %s (still open at %s on line %d)"
        (frame_kind fr) what ln
  in
  let emit ln stmt =
    match !stack with
    | F_for f :: _ -> f.body <- stmt :: f.body
    | F_while w :: _ -> w.body <- stmt :: w.body
    | F_if i :: _ -> i.body <- stmt :: i.body
    | [] -> guarded ln (fun () -> Build.add_stmt (builder ln) stmt)
  in
  let close_if_branch (i : _) =
    match i with
    | F_if fr -> (
      let body = List.rev fr.body in
      fr.body <- [];
      match fr.cond with
      | Some c ->
        fr.branches <- (c, body) :: fr.branches;
        fr.cond <- None
      | None -> ())
    | _ -> assert false
  in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '!' || line.[0] = '#' then ()
      else if !finished then
        fail ln "action after 'end program'"
      else begin
        last_line := ln;
        let toks = tokenize ln line in
        let keyword =
          match toks.(0) with
          | Tid k -> String.lowercase_ascii k
          | t -> fail ln "expected an action keyword, found %S" (token_text t)
        in
        let rest = pstate ln (Array.sub toks 1 (Array.length toks - 1)) in
        match keyword with
        | "program" ->
          if !b <> None then fail ln "duplicate 'program' action";
          b := Some (Build.create (expect_ident rest "a program name"))
        | "module" ->
          require_closed ln "'module'";
          Build.add_module (builder ln) (expect_ident rest "a module name")
        | "globalgrid" ->
          require_closed ln "'globalgrid'";
          Build.add_global (builder ln) (parse_grid_decl rest)
        | "modulegrid" ->
          require_closed ln "'modulegrid'";
          guarded ln (fun () ->
              Build.add_module_grid (builder ln) (parse_grid_decl rest))
        | "function" ->
          require_closed ln "'function'";
          let name = expect_ident rest "a function name" in
          (match expect_ident rest "'returns'" with
          | "returns" -> ()
          | other -> fail ln "expected 'returns', found %S" other);
          let return =
            match expect_ident rest "a return type or 'void'" with
            | "void" -> None
            | ty -> Some (elem_type ln ty)
          in
          guarded ln (fun () ->
              Build.start_function (builder ln) ?return name)
        | "param" ->
          guarded ln (fun () ->
              Build.add_param (builder ln) (parse_grid_decl rest))
        | "grid" ->
          guarded ln (fun () ->
              Build.add_grid (builder ln) (parse_grid_decl rest))
        | "step" ->
          require_closed ln "'step'";
          guarded ln (fun () ->
              Build.start_step (builder ln) (expect_ident rest "a step label"))
        | "set" ->
          let grid = expect_ident rest "a grid name" in
          let field =
            match peek rest with
            | Some (Top "%") ->
              advance rest;
              Some (expect_ident rest "a field name")
            | _ -> None
          in
          let indices =
            match peek rest with
            | Some (Top "(") -> parse_args rest
            | _ -> []
          in
          (match lookup grid with
          | Some g when Grid.is_scalar g && indices <> [] ->
            fail ln
              "grid %S is a scalar (declared without dims) and takes no \
               subscripts"
              grid
          | _ -> ());
          expect_op rest "=";
          let e = parse_whole_expr rest in
          emit ln (Stmt.Assign ({ Expr.grid; field; indices }, e))
        | "foreach" ->
          let index = expect_ident rest "a loop index" in
          expect_op rest "=";
          let lo = parse_expr rest in
          expect_op rest ",";
          let hi = parse_expr rest in
          let fstep =
            match peek rest with
            | Some (Top ",") ->
              advance rest;
              parse_expr rest
            | _ -> Expr.int 1
          in
          let fsched =
            match peek rest with
            | Some (Tid "schedule") ->
              advance rest;
              Some (parse_schedule rest)
            | _ -> None
          in
          (match peek rest with
          | Some t -> fail ln "trailing %S after foreach bounds" (token_text t)
          | None -> ());
          stack :=
            F_for { fl = ln; index; lo; hi; fstep; fsched; body = [] } :: !stack
        | "while" ->
          let cond = parse_whole_expr rest in
          stack := F_while { fl = ln; cond; body = [] } :: !stack
        | "if" ->
          let cond = parse_whole_expr rest in
          stack :=
            F_if { fl = ln; branches = []; cond = Some cond; body = [] }
            :: !stack
        | "elseif" -> (
          match !stack with
          | (F_if fr as top) :: _ ->
            if fr.cond = None then
              fail ln "elseif after else";
            close_if_branch top;
            fr.cond <- Some (parse_whole_expr rest)
          | _ -> fail ln "elseif without an open if")
        | "else" -> (
          match !stack with
          | (F_if fr as top) :: _ ->
            if fr.cond = None then fail ln "duplicate else";
            close_if_branch top
          | _ -> fail ln "else without an open if")
        | "return" ->
          let e =
            match peek rest with
            | None -> None
            | Some _ -> Some (parse_whole_expr rest)
          in
          emit ln (Stmt.Return e)
        | "call" ->
          let callee = expect_ident rest "a subroutine name" in
          let args =
            match peek rest with
            | Some (Top "(") -> parse_args rest
            | Some t -> fail ln "trailing %S after call" (token_text t)
            | None -> []
          in
          emit ln (Stmt.Call (callee, args))
        | "exit" -> emit ln Stmt.Exit_loop
        | "cycle" -> emit ln Stmt.Cycle_loop
        | "end" -> (
          match String.lowercase_ascii (expect_ident rest "a block kind") with
          | "foreach" -> (
            match !stack with
            | F_for f :: tl ->
              stack := tl;
              emit ln
                (Stmt.For
                   {
                     Stmt.index = f.index;
                     lo = f.lo;
                     hi = f.hi;
                     step = f.fstep;
                     body = List.rev f.body;
                     directive = None;
                     schedule = f.fsched;
                   })
            | fr :: _ ->
              fail ln "'end foreach' closes a %s opened on line %d"
                (frame_kind fr) (frame_line fr)
            | [] -> fail ln "'end foreach' without an open foreach")
          | "while" -> (
            match !stack with
            | F_while w :: tl ->
              stack := tl;
              emit ln (Stmt.While (w.cond, List.rev w.body))
            | fr :: _ ->
              fail ln "'end while' closes a %s opened on line %d"
                (frame_kind fr) (frame_line fr)
            | [] -> fail ln "'end while' without an open while")
          | "if" -> (
            match !stack with
            | (F_if fr as top) :: tl ->
              let else_ =
                if fr.cond = None then begin
                  let body = List.rev fr.body in
                  fr.body <- [];
                  body
                end
                else begin
                  close_if_branch top;
                  []
                end
              in
              stack := tl;
              emit ln (Stmt.If (List.rev fr.branches, else_))
            | fr :: _ ->
              fail ln "'end if' closes a %s opened on line %d" (frame_kind fr)
                (frame_line fr)
            | [] -> fail ln "'end if' without an open if")
          | "function" -> require_closed ln "'end function'"
          | "program" ->
            require_closed ln "'end program'";
            finished := true
          | other -> fail ln "unknown block kind 'end %s'" other)
        | other -> fail ln "unknown action %S" other
      end)
    lines;
  require_closed (!last_line + 1) "end of script";
  match !b with
  | None -> fail 1 "empty script: expected 'program <name>'"
  | Some bb -> (
    match Build.finish bb with
    | p -> p
    | exception Build.Build_error msg -> fail !last_line "%s" msg)
