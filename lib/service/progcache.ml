(** Content-hash compiled-program cache.

    The paper's pipeline is compile-once/run-many; the long-lived
    listener ({!Listener}) extends that across {e connections}: the
    script text of every request is hashed and the whole
    parse -> analysis -> codegen -> reparse pipeline runs only on the
    first sight of each distinct script.  Keying is by content digest
    of the exact script bytes — whitespace or comment changes are
    different programs as far as the cache is concerned, which keeps
    the key computation a single pass with no normalization to get
    subtly wrong.

    Bounded: at most [capacity] compiled programs are retained, with
    least-recently-used eviction (a monotonic use clock per entry; the
    eviction scan is O(size), fine for the tens-of-entries capacities
    a server realistically configures).  Only {e successful} compiles
    are cached: a script that fails to parse fails fast enough that
    caching the fault would only risk pinning a transient analysis
    error (and would let a malicious client fill the cache with
    garbage keys).

    Thread-safe; compilation runs {e outside} the lock so a slow
    compile cannot block concurrent hits.  Two readers missing on the
    same key concurrently may both compile — the second insert is
    dropped, which wastes one compile but never corrupts the cache. *)

type entry = {
  e_compiled : Serve.compiled;
  mutable e_stamp : int;  (** use-clock value at last access (LRU) *)
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;  (** digest of script text -> entry *)
  mu : Mutex.t;
  compile : string -> (Serve.compiled, Glaf_runtime.Fault.t) result;
      (** how a miss compiles; lets callers thread a plan transform
          through the cache so hits and misses serve the same program *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  cs_size : int;
  cs_capacity : int;
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
}

let create ?(capacity = 64) ?(compile = Serve.compile_result ?transform:None)
    () =
  if capacity < 1 then invalid_arg "Progcache.create: capacity must be >= 1";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    mu = Mutex.create ();
    compile;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* MD5 via the stdlib Digest: not cryptographic, but the cache is a
   performance layer, not an integrity boundary — a collision serves
   the wrong (still valid) program to a client that deliberately
   constructed one. *)
let key_of_script text = Digest.to_hex (Digest.string text)

let stats c =
  Mutex.lock c.mu;
  let s =
    {
      cs_size = Hashtbl.length c.tbl;
      cs_capacity = c.capacity;
      cs_hits = c.hits;
      cs_misses = c.misses;
      cs_evictions = c.evictions;
    }
  in
  Mutex.unlock c.mu;
  s

let hit_rate s =
  let total = s.cs_hits + s.cs_misses in
  if total = 0 then 0.0 else float_of_int s.cs_hits /. float_of_int total

(* under [c.mu] *)
let evict_lru c =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, _, stamp) when stamp <= e.e_stamp -> acc
        | _ -> Some (k, e, e.e_stamp))
      c.tbl None
  in
  match victim with
  | None -> ()
  | Some (k, e, _) ->
    Hashtbl.remove c.tbl k;
    c.evictions <- c.evictions + 1;
    (* Drop the evicted script's compiled bytecode and stats sites
       too: the interpreter-level caches key by the unit's structural
       digest, so without this a long-lived server accumulates
       programs for scripts it will never serve again. *)
    Glaf_interp.Bytecode.purge_unit
      (Glaf_interp.Bytecode.unit_key e.e_compiled.Serve.co_unit)

(** Return the compiled program for [script], compiling (and caching
    on success) if absent.  The second component reports whether this
    lookup hit the cache. *)
let find_or_compile c script =
  let key = key_of_script script in
  Mutex.lock c.mu;
  c.clock <- c.clock + 1;
  let stamp = c.clock in
  match Hashtbl.find_opt c.tbl key with
  | Some e ->
    e.e_stamp <- stamp;
    c.hits <- c.hits + 1;
    Mutex.unlock c.mu;
    (Ok e.e_compiled, `Hit)
  | None -> (
    c.misses <- c.misses + 1;
    Mutex.unlock c.mu;
    match c.compile script with
    | Error _ as err -> (err, `Miss)
    | Ok compiled ->
      Mutex.lock c.mu;
      if not (Hashtbl.mem c.tbl key) then begin
        while Hashtbl.length c.tbl >= c.capacity do
          evict_lru c
        done;
        Hashtbl.replace c.tbl key { e_compiled = compiled; e_stamp = stamp }
      end;
      Mutex.unlock c.mu;
      (Ok compiled, `Miss))
