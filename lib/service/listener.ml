(** Long-lived serving over a Unix domain socket.

    [oglaf serve --listen SOCK] turns the batch server into a
    resident service: clients connect to [SOCK], send one request per
    line, and receive one JSON response line per request.  The server
    stays up across client crashes (a dead peer only costs its own
    connection), malformed requests (answered with a parse fault, the
    connection keeps serving), worker deaths (pool supervision
    respawns or degrades, {!Glaf_runtime.Pool.health}) and overload
    (admission control sheds with a structured
    {!Glaf_runtime.Fault.Overload_fault} instead of queueing
    unboundedly).

    {2 Wire protocol}

    Requests (newline-delimited; fields separated by a single tab):
    {[
      run <call>                    invoke <call> on the startup script
      run <call>\t<escaped-script>  invoke on an inline script (compiled
                                    through the content-hash cache)
      status                        one-line server status JSON
    ]}
    [<call>] uses the calls-file syntax ([name(arg, ...)]); the inline
    script payload escapes backslash, newline, tab and carriage return
    as [\\], [\n], [\t], [\r] ({!escape_script}).  Blank lines are
    ignored; a request line over {!Serve.max_call_line_bytes} is
    answered with a parse fault and the oversized line is discarded
    without buffering it — the cap holds per line whether the line
    arrives byte-by-byte or completed inside one read chunk.

    Responses are one JSON object per line carrying [seq], the 1-based
    per-connection request number — executors answer out of order
    under pipelining, so clients match on [seq]:
    {[
      {"seq":1,"ok":true,"call":"pi_mid(100)","value":"3.1416...",
       "output":"","ms":0.412}
      {"seq":2,"ok":false,"fault":{"class":"overload","pending":64,...}}
    ]}

    {2 Lifecycle}

    One reader domain per connection parses and {e admits} requests
    (never compiles or executes them); a fixed team of executor
    domains pulls admitted jobs from a bounded pending queue, resolves
    inline scripts through the compile cache, and multiplexes their
    parallel regions onto the shared worker pool — so both execution
    {e and} compile work are bounded by admission.  Admission sheds
    when the queue is at the [--max-pending] high-water mark, and the
    accept loop sheds whole {e connections} past the
    [lc_max_conns] cap (one overload fault at [seq] 0, then close) so
    the per-connection reader domains can never exhaust the runtime's
    domain limit.  A connection's fd is closed as soon as its reader
    has exited (peer EOF, reset, or drain) and every admitted job on
    it has been answered; the accept loop reaps finished readers, so
    short-lived clients cost nothing after they disconnect.  On
    SIGTERM ({!request_stop}) the server drains: stops accepting,
    sheds any not-yet-admitted requests (still answered, with an
    overload fault), finishes every admitted job, then closes
    connections, unlinks the socket and returns its final {!stats}. *)

open Glaf_runtime

(** Raised for socket-setup problems (path in use, not a socket);
    mapped to a one-line diagnostic by the CLI. *)
exception Listener_error of string

(* --- script payload escaping --------------------------------------------- *)

let escape_script s =
  let b = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape_script s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if s.[i] <> '\\' then begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
    else if i + 1 >= n then Error "dangling backslash in script payload"
    else
      match s.[i + 1] with
      | 'n' -> Buffer.add_char b '\n'; go (i + 2)
      | 't' -> Buffer.add_char b '\t'; go (i + 2)
      | 'r' -> Buffer.add_char b '\r'; go (i + 2)
      | '\\' -> Buffer.add_char b '\\'; go (i + 2)
      | c -> Error (Printf.sprintf "unknown escape '\\%c' in script payload" c)
  in
  go 0

(* --- configuration -------------------------------------------------------- *)

type config = {
  lc_socket : string;
  lc_max_pending : int;  (** admission high-water mark (queue length) *)
  lc_max_conns : int;
      (** concurrent-connection cap: one reader domain per live
          connection, so this also bounds domain usage *)
  lc_executors : int;  (** concurrent call executors *)
  lc_threads : int option;
  lc_sched : Sched.t option;
  lc_deadline_s : float option;  (** per-call deadline *)
  lc_bytecode : bool;
  lc_retries : int;  (** transient-fault retries per call *)
  lc_cache_capacity : int;
  lc_transform :
    (Glaf_fortran.Ast.compilation_unit -> Glaf_fortran.Ast.compilation_unit)
    option;
      (** rewrites every compiled unit before it is served (startup
          script and cached inline scripts alike) — how [--plan]
          applies a tuning plan on the serving path *)
  lc_status_extra : (unit -> (string * string) list) option;
      (** extra top-level status fields, [(name, raw JSON value)] —
          e.g. the plan cache's hit/stale counters *)
}

let default_config ~socket =
  {
    lc_socket = socket;
    lc_max_pending = 64;
    lc_max_conns = 32;
    lc_executors = 2;
    lc_threads = None;
    lc_sched = None;
    lc_deadline_s = None;
    lc_bytecode = true;
    lc_retries = 0;
    lc_cache_capacity = 64;
    lc_transform = None;
    lc_status_extra = None;
  }

(** Completed-call latencies retained for the rolling percentile
    window in [--status] output. *)
let latency_window = 256

(* --- server state --------------------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_wmu : Mutex.t;  (** serializes response writes (executors race) *)
  mutable c_seq : int;  (** requests read on this connection *)
  mutable c_dead : bool;  (** peer gone: drop further writes *)
  mutable c_closed : bool;  (** fd closed (under [c_wmu]); never close twice *)
  c_inflight : int Atomic.t;  (** admitted jobs not yet answered *)
  c_eof : bool Atomic.t;  (** reader exited: close once inflight drains *)
  c_done : bool Atomic.t;  (** reader domain finished; joinable without blocking *)
}

type wire_job = {
  wj_conn : conn;
  wj_seq : int;
  wj_call : Serve.call;
  wj_script : string option;
      (** inline script, compiled by the executor {e after} admission
          (through the cache) so [--max-pending] bounds compile work
          too; [None] runs the startup script *)
}

type t = {
  cfg : config;
  sock : Unix.file_descr;
  cache : Progcache.t;
  default_compiled : Serve.compiled;
  draining : bool Atomic.t;
  (* bounded pending queue *)
  qmu : Mutex.t;
  qcv : Condition.t;
  queue : wire_job Queue.t;
  mutable q_closed : bool;
  (* connection registry *)
  cmu : Mutex.t;
  mutable conns : (conn * unit Domain.t) list;
  mutable accepted : int;
  (* counters *)
  ok : int Atomic.t;  (** executed, outcome ok *)
  failed : int Atomic.t;  (** executed, classified fault *)
  shed : int Atomic.t;  (** rejected at admission with Overload_fault *)
  rejected : int Atomic.t;  (** malformed / oversized / compile-error *)
  write_errors : int Atomic.t;  (** responses lost to dead peers *)
  (* rolling window of the last [latency_window] completed-call wall
     times (ms), written by executors under [lat_mu] *)
  lat_mu : Mutex.t;
  lat : float array;
  mutable lat_count : int;  (** total completed calls ever recorded *)
}

type stats = {
  ls_accepted : int;
  ls_ok : int;
  ls_failed : int;
  ls_shed : int;
  ls_rejected : int;
  ls_pending : int;
  ls_max_pending : int;
  ls_write_errors : int;
  ls_cache : Progcache.stats;
  ls_health : Pool.health;
  ls_respawns : int;
  ls_draining : bool;
  ls_calls : int;  (** completed calls recorded in the latency window *)
  ls_p50_ms : float;  (** median latency over the window; 0 when empty *)
  ls_p99_ms : float;  (** p99 latency over the window; 0 when empty *)
}

(* Record one completed call's wall time into the rolling window. *)
let record_latency t ms =
  Mutex.lock t.lat_mu;
  t.lat.(t.lat_count mod latency_window) <- ms;
  t.lat_count <- t.lat_count + 1;
  Mutex.unlock t.lat_mu

(* Nearest-rank percentiles over the filled part of the window. *)
let latency_percentiles t =
  Mutex.lock t.lat_mu;
  let n = min t.lat_count latency_window in
  let window = Array.sub t.lat 0 n in
  let count = t.lat_count in
  Mutex.unlock t.lat_mu;
  if n = 0 then (count, 0.0, 0.0)
  else begin
    Array.sort compare window;
    let at p =
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      window.(max 0 (min (n - 1) (rank - 1)))
    in
    (count, at 0.50, at 0.99)
  end

let stats t =
  Mutex.lock t.qmu;
  let pending = Queue.length t.queue in
  Mutex.unlock t.qmu;
  Mutex.lock t.cmu;
  let accepted = t.accepted in
  Mutex.unlock t.cmu;
  let calls, p50, p99 = latency_percentiles t in
  {
    ls_accepted = accepted;
    ls_ok = Atomic.get t.ok;
    ls_failed = Atomic.get t.failed;
    ls_shed = Atomic.get t.shed;
    ls_rejected = Atomic.get t.rejected;
    ls_pending = pending;
    ls_max_pending = t.cfg.lc_max_pending;
    ls_write_errors = Atomic.get t.write_errors;
    ls_cache = Progcache.stats t.cache;
    ls_health = Pool.health ();
    ls_respawns = (Pool.stats ()).Pool.respawns;
    ls_draining = Atomic.get t.draining;
    ls_calls = calls;
    ls_p50_ms = p50;
    ls_p99_ms = p99;
  }

let health_string = function
  | Pool.Healthy -> "healthy"
  | Pool.Degraded reason -> Printf.sprintf "degraded (%s)" reason

(** One-line drain summary, printed by the CLI on exit; CI greps it
    for [respawns=] / [degraded]. *)
let summary_line st =
  Printf.sprintf
    "drained: %d ok, %d failed, %d shed, %d rejected over %d connections; \
     cache %d hits / %d misses (%.1f%% hit rate); health=%s respawns=%d"
    st.ls_ok st.ls_failed st.ls_shed st.ls_rejected st.ls_accepted
    st.ls_cache.Progcache.cs_hits st.ls_cache.Progcache.cs_misses
    (100.0 *. Progcache.hit_rate st.ls_cache)
    (health_string st.ls_health)
    st.ls_respawns

(* --- response rendering --------------------------------------------------- *)

let call_text (c : Serve.call) =
  Format.asprintf "%s%a" c.Serve.cl_name Serve.pp_args c.Serve.cl_args

let fault_response ~seq fault =
  Printf.sprintf "{\"seq\":%d,\"ok\":false,\"fault\":%s}" seq
    (Fault.to_json fault)

let outcome_response ~seq (oc : Serve.outcome) =
  Printf.sprintf
    "{\"seq\":%d,\"ok\":true,\"call\":\"%s\",\"value\":%s,\"output\":\"%s\",\"ms\":%.3f}"
    seq
    (Fault.json_escape (call_text oc.Serve.oc_call))
    (match oc.Serve.oc_value with
    | Some v -> "\"" ^ Fault.json_escape (Value.to_string v) ^ "\""
    | None -> "null")
    (Fault.json_escape oc.Serve.oc_output)
    (oc.Serve.oc_time_s *. 1e3)

(* Bytecode coverage over every script this process has served: total
   compiled-vs-treewalked executions plus the worst bailing sites, so
   a coverage regression shows up in monitoring rather than as a
   silent slowdown. *)
let bytecode_json () =
  let rows = Glaf_interp.Bytecode.Stats.snapshot () in
  let runs = List.fold_left (fun a (r : Glaf_interp.Bytecode.Stats.row) -> a + r.r_runs) 0 rows in
  let bails = List.fold_left (fun a (r : Glaf_interp.Bytecode.Stats.row) -> a + r.r_bails) 0 rows in
  let bailing =
    List.filter (fun (r : Glaf_interp.Bytecode.Stats.row) -> r.r_bails > 0) rows
    |> List.sort (fun (a : Glaf_interp.Bytecode.Stats.row) b ->
           compare b.r_bails a.r_bails)
  in
  let top = List.filteri (fun i _ -> i < 8) bailing in
  Printf.sprintf
    "{\"sites\":%d,\"runs\":%d,\"bails\":%d,\"bail_sites\":[%s]}"
    (List.length rows) runs bails
    (String.concat ","
       (List.map
          (fun (r : Glaf_interp.Bytecode.Stats.row) ->
            Printf.sprintf "{\"label\":\"%s\",\"bails\":%d,\"reason\":%s}"
              (Fault.json_escape r.r_label) r.r_bails
              (match r.r_reason with
              | Some why -> "\"" ^ Fault.json_escape why ^ "\""
              | None -> "null"))
          top))

let status_response ~seq t =
  let st = stats t in
  let extra =
    match t.cfg.lc_status_extra with
    | None -> ""
    | Some fields ->
      String.concat ""
        (List.map
           (fun (name, json) -> Printf.sprintf ",\"%s\":%s" name json)
           (fields ()))
  in
  Printf.sprintf
    "{\"seq\":%d,\"ok\":true,\"status\":{\"health\":\"%s\",\"draining\":%b,\
     \"pending\":%d,\"max_pending\":%d,\"connections\":%d,\"ok\":%d,\
     \"failed\":%d,\"shed\":%d,\"rejected\":%d,\"write_errors\":%d,\
     \"respawns\":%d,\"latency\":{\"window\":%d,\"count\":%d,\
     \"p50_ms\":%.3f,\"p99_ms\":%.3f},\"cache\":{\"size\":%d,\"capacity\":%d,\
     \"hits\":%d,\"misses\":%d,\"evictions\":%d,\"hit_rate\":%.4f},\
     \"bytecode\":%s%s}}"
    seq
    (Fault.json_escape (health_string st.ls_health))
    st.ls_draining st.ls_pending st.ls_max_pending st.ls_accepted st.ls_ok
    st.ls_failed st.ls_shed st.ls_rejected st.ls_write_errors st.ls_respawns
    latency_window st.ls_calls st.ls_p50_ms st.ls_p99_ms
    st.ls_cache.Progcache.cs_size st.ls_cache.Progcache.cs_capacity
    st.ls_cache.Progcache.cs_hits st.ls_cache.Progcache.cs_misses
    st.ls_cache.Progcache.cs_evictions
    (Progcache.hit_rate st.ls_cache)
    (bytecode_json ()) extra

(* --- socket plumbing ------------------------------------------------------ *)

(* Dead clients must cost their connection, not the process: writes to
   a closed peer raise EPIPE instead of delivering SIGPIPE. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd b off (len - off) in
      go (off + n)
    end
  in
  go 0

(* Serialized response write; a peer that vanished marks the
   connection dead so queued jobs for it stop paying write syscalls. *)
let write_response t conn line =
  Mutex.lock conn.c_wmu;
  (if not (conn.c_dead || conn.c_closed) then
     try write_all conn.c_fd (line ^ "\n")
     with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
       conn.c_dead <- true;
       Atomic.incr t.write_errors);
  Mutex.unlock conn.c_wmu

(* Idempotent close: [c_closed] is flipped under the write mutex so a
   racing response can never write to a recycled fd number. *)
let close_conn conn =
  Mutex.lock conn.c_wmu;
  if not conn.c_closed then begin
    conn.c_closed <- true;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock conn.c_wmu

(* Close as soon as the reader is gone AND nothing admitted still owes
   a response.  Called by the reader on exit and by executors after
   each answer: whichever side satisfies the condition last closes
   (both may — [close_conn] is idempotent), so a short-lived client's
   fd is reclaimed immediately instead of leaking until drain. *)
let release_conn conn =
  if Atomic.get conn.c_eof && Atomic.get conn.c_inflight = 0 then
    close_conn conn

(* --- request handling (reader side) --------------------------------------- *)

type request =
  | Rq_run of string * string option  (* call text, optional inline script *)
  | Rq_status
  | Rq_bad of string

let parse_request line =
  match String.index_opt line '\t' with
  | None ->
    let s = String.trim line in
    if s = "status" then Rq_status
    else if String.length s > 4 && String.sub s 0 4 = "run " then
      Rq_run (String.trim (String.sub s 4 (String.length s - 4)), None)
    else Rq_bad "expected 'run <call>[\\t<escaped-script>]' or 'status'"
  | Some tab ->
    let head = String.trim (String.sub line 0 tab) in
    let payload = String.sub line (tab + 1) (String.length line - tab - 1) in
    if String.length head > 4 && String.sub head 0 4 = "run " then
      match unescape_script payload with
      | Ok script ->
        Rq_run (String.trim (String.sub head 4 (String.length head - 4)),
                Some script)
      | Error e -> Rq_bad e
    else Rq_bad "expected 'run <call>[\\t<escaped-script>]' or 'status'"

(* Admission: the only place requests enter the pending queue.  Sheds
   (with the queue length observed under the lock) when the queue is
   at the high-water mark or the server is draining — the reader never
   blocks, so backpressure is immediate and the queue is bounded by
   construction. *)
let admit t conn ~seq call script =
  Mutex.lock t.qmu;
  let pending = Queue.length t.queue in
  if t.q_closed || Atomic.get t.draining || pending >= t.cfg.lc_max_pending
  then begin
    Mutex.unlock t.qmu;
    Atomic.incr t.shed;
    write_response t conn
      (fault_response ~seq
         (Fault.Overload_fault
            { pending; limit = t.cfg.lc_max_pending }))
  end
  else begin
    (* inflight is raised before the job is visible to executors so
       their decrement can never undershoot *)
    Atomic.incr conn.c_inflight;
    Queue.push
      { wj_conn = conn; wj_seq = seq; wj_call = call; wj_script = script }
      t.queue;
    Condition.signal t.qcv;
    Mutex.unlock t.qmu
  end

let handle_line t conn line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.trim line = "" then ()
  else begin
    conn.c_seq <- conn.c_seq + 1;
    let seq = conn.c_seq in
    match parse_request line with
    | Rq_status -> write_response t conn (status_response ~seq t)
    | Rq_bad reason ->
      Atomic.incr t.rejected;
      write_response t conn
        (fault_response ~seq (Fault.Parse_fault { line = seq; reason }))
    | Rq_run (call_text, script_opt) -> (
      (* the reader only parses the call header (cheap); the inline
         script — a full compile pipeline on a cache miss — is passed
         through admission untouched and compiled by an executor *)
      match Serve.parse_call seq call_text with
      | call -> admit t conn ~seq call script_opt
      | exception Serve.Calls_error (_, reason) ->
        Atomic.incr t.rejected;
        write_response t conn
          (fault_response ~seq (Fault.Parse_fault { line = seq; reason })))
  end

(* Per-connection reader: select-polls so it can notice the drain
   flag, splits complete lines out of a growing buffer, and enforces
   the request-size cap per line — both on a partial line that
   outgrows the buffer (answer once, then discard bytes until the next
   newline: resync without buffering the flood) and on a complete line
   whose terminating newline arrived in the same read chunk that blew
   the cap (answer and skip it; no discard mode needed, the line is
   already delimited). *)
let reader t conn =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let discarding = ref false in
  let oversize_response () =
    conn.c_seq <- conn.c_seq + 1;
    Atomic.incr t.rejected;
    write_response t conn
      (fault_response ~seq:conn.c_seq
         (Fault.Parse_fault
            {
              line = conn.c_seq;
              reason =
                Printf.sprintf "request line exceeds %d bytes"
                  Serve.max_call_line_bytes;
            }))
  in
  let oversize () =
    oversize_response ();
    Buffer.clear buf;
    discarding := true
  in
  let consume_lines data =
    (* [data] is the newly read chunk; only scan the whole buffer when
       the chunk actually completed a line *)
    Buffer.add_string buf data;
    if String.contains data '\n' then begin
      let text = Buffer.contents buf in
      Buffer.clear buf;
      let n = String.length text in
      let rec go start =
        if start >= n then ()
        else
          match String.index_from_opt text start '\n' with
          | None -> Buffer.add_substring buf text start (n - start)
          | Some nl ->
            if nl - start > Serve.max_call_line_bytes then oversize_response ()
            else handle_line t conn (String.sub text start (nl - start));
            go (nl + 1)
      in
      go 0
    end;
    if Buffer.length buf > Serve.max_call_line_bytes then oversize ()
  in
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ conn.c_fd ] [] [] 0.1 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()  (* EOF: client closed its sending side *)
        | n ->
          let data = Bytes.sub_string chunk 0 n in
          let data =
            if not !discarding then data
            else
              match String.index_opt data '\n' with
              | None -> ""  (* still inside the oversized line: drop *)
              | Some i ->
                discarding := false;
                String.sub data (i + 1) (String.length data - i - 1)
          in
          if data <> "" then consume_lines data;
          loop ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ()
        | exception Unix.Unix_error (EINTR, _, _) -> loop ())
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  (* Drain semantics: requests already admitted will still be answered
     by the executors; anything left unread in the kernel buffer is
     abandoned with the connection. *)
  (try loop ()
   with e ->
     (* a reader must never take the server down *)
     Atomic.incr t.rejected;
     Printf.eprintf "oglaf: reader error: %s\n%!" (Printexc.to_string e));
  (* Reader exit — EOF, reset, drain or error — releases the fd as
     soon as the last admitted job has been answered, and marks the
     domain reapable so the accept loop can join it and drop the
     registry entry.  Without this, every short-lived client would
     leak its fd (and domain) until final drain and a long-running
     server would hit EMFILE. *)
  Atomic.set conn.c_eof true;
  release_conn conn;
  Atomic.set conn.c_done true

(* --- executors ------------------------------------------------------------ *)

let executor t =
  let rec loop () =
    Mutex.lock t.qmu;
    let rec take () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.q_closed then None
      else begin
        Condition.wait t.qcv t.qmu;
        take ()
      end
    in
    match take () with
    | None -> Mutex.unlock t.qmu
    | Some job ->
      Mutex.unlock t.qmu;
      (* inline scripts compile here, post-admission: a shed request
         never costs a compile, and compile work per executor is
         serialized with its execution work *)
      let compiled_r =
        match job.wj_script with
        | None -> Ok t.default_compiled
        | Some script -> fst (Progcache.find_or_compile t.cache script)
      in
      let line =
        match compiled_r with
        | Error fault ->
          Atomic.incr t.rejected;
          fault_response ~seq:job.wj_seq fault
        | Ok compiled -> (
          let t0 = Unix.gettimeofday () in
          let result =
            Serve.run_call ?threads:t.cfg.lc_threads ?sched:t.cfg.lc_sched
              ?deadline_s:t.cfg.lc_deadline_s ~bytecode:t.cfg.lc_bytecode
              ~retries:t.cfg.lc_retries compiled job.wj_call
          in
          (* faulted calls count too: a deadline-bound tail is exactly
             what the p99 is there to expose *)
          record_latency t ((Unix.gettimeofday () -. t0) *. 1e3);
          match result with
          | Ok oc ->
            Atomic.incr t.ok;
            outcome_response ~seq:job.wj_seq oc
          | Error fault ->
            Atomic.incr t.failed;
            fault_response ~seq:job.wj_seq fault)
      in
      write_response t job.wj_conn line;
      Atomic.decr job.wj_conn.c_inflight;
      release_conn job.wj_conn;
      loop ()
  in
  try loop ()
  with e ->
    Printf.eprintf "oglaf: executor error: %s\n%!" (Printexc.to_string e)

(* --- lifecycle ------------------------------------------------------------ *)

(* A stale socket file from a crashed server is removed; a {e live}
   one (something accepts our probe connection) is a configuration
   error, not ours to steal. *)
let prepare_socket_path path =
  if Sys.file_exists path then begin
    (match (Unix.lstat path).Unix.st_kind with
    | Unix.S_SOCK -> ()
    | _ ->
      raise
        (Listener_error
           (Printf.sprintf "%s exists and is not a socket" path)));
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      raise
        (Listener_error
           (Printf.sprintf "a server is already listening on %s" path));
    Unix.unlink path
  end

(** Compile the startup script (through the cache, so a client sending
    the same text inline hits) and bind the socket — clients can
    connect as soon as this returns.  Serving starts at {!serve}. *)
let create ~config:cfg script_text =
  if cfg.lc_max_pending < 1 then
    raise (Listener_error "--max-pending must be >= 1");
  if cfg.lc_executors < 1 then
    raise (Listener_error "need at least one executor");
  ignore_sigpipe ();
  let cache =
    Progcache.create ~capacity:cfg.lc_cache_capacity
      ~compile:(Serve.compile_result ?transform:cfg.lc_transform)
      ()
  in
  match fst (Progcache.find_or_compile cache script_text) with
  | Error fault -> Error fault
  | Ok compiled ->
    prepare_socket_path cfg.lc_socket;
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind sock (Unix.ADDR_UNIX cfg.lc_socket);
       Unix.listen sock 64
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    Ok
      {
        cfg;
        sock;
        cache;
        default_compiled = compiled;
        draining = Atomic.make false;
        qmu = Mutex.create ();
        qcv = Condition.create ();
        queue = Queue.create ();
        q_closed = false;
        cmu = Mutex.create ();
        conns = [];
        accepted = 0;
        ok = Atomic.make 0;
        failed = Atomic.make 0;
        shed = Atomic.make 0;
        rejected = Atomic.make 0;
        write_errors = Atomic.make 0;
        lat_mu = Mutex.create ();
        lat = Array.make latency_window 0.0;
        lat_count = 0;
      }

(** Ask the server to drain and exit; safe from a signal handler. *)
let request_stop t = Atomic.set t.draining true

(* Join finished reader domains and drop their registry entries;
   returns the live-connection count (the [lc_max_conns] admission
   figure).  [c_done] is the last thing a reader sets, so the joins
   here never block meaningfully. *)
let reap_connections t =
  Mutex.lock t.cmu;
  let finished, live =
    List.partition (fun (c, _) -> Atomic.get c.c_done) t.conns
  in
  t.conns <- live;
  let n_live = List.length live in
  Mutex.unlock t.cmu;
  List.iter (fun (_, dom) -> Domain.join dom) finished;
  n_live

(** Live (unreaped) connection count; for tests and status. *)
let live_connections t =
  Mutex.lock t.cmu;
  let n = List.length t.conns in
  Mutex.unlock t.cmu;
  n

(* Refuse a connection at the accept loop: one overload fault line at
   [seq] 0 (no request was read, so no request number exists), then
   close.  Used past the connection cap and when a reader domain
   cannot be spawned. *)
let refuse_connection t fd ~live =
  Atomic.incr t.shed;
  (try
     write_all fd
       (fault_response ~seq:0
          (Fault.Overload_fault { pending = live; limit = t.cfg.lc_max_conns })
       ^ "\n")
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(** Accept connections and serve until {!request_stop}; returns the
    final {!stats} after a full drain (admitted jobs answered,
    connections closed, socket unlinked). *)
let serve t =
  let executors =
    Array.init t.cfg.lc_executors (fun _ -> Domain.spawn (fun () -> executor t))
  in
  let rec accept_loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.sock ] [] [] 0.1 with
      | [], _, _ ->
        ignore (reap_connections t);
        accept_loop ()
      | _ -> (
        match Unix.accept t.sock with
        | fd, _ ->
          let live = reap_connections t in
          if live >= t.cfg.lc_max_conns then refuse_connection t fd ~live
          else begin
            let conn =
              {
                c_fd = fd;
                c_wmu = Mutex.create ();
                c_seq = 0;
                c_dead = false;
                c_closed = false;
                c_inflight = Atomic.make 0;
                c_eof = Atomic.make false;
                c_done = Atomic.make false;
              }
            in
            match Domain.spawn (fun () -> reader t conn) with
            | dom ->
              Mutex.lock t.cmu;
              t.conns <- (conn, dom) :: t.conns;
              t.accepted <- t.accepted + 1;
              Mutex.unlock t.cmu
            | exception e ->
              (* domain budget exhausted (Failure) or similar: shed
                 this connection, keep the server up *)
              Printf.eprintf "oglaf: reader spawn failed: %s\n%!"
                (Printexc.to_string e);
              refuse_connection t fd ~live
          end;
          accept_loop ()
        | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
          accept_loop ()
        | exception Unix.Unix_error (err, _, _) ->
          (* EMFILE/ENFILE/ECONNABORTED and friends must shed, not
             kill the process; back off briefly so a persistent error
             cannot spin the loop *)
          Printf.eprintf "oglaf: accept failed: %s\n%!"
            (Unix.error_message err);
          (try ignore (Unix.select [] [] [] 0.05)
           with Unix.Unix_error _ -> ());
          accept_loop ())
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (* drain: no new connections ... *)
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.lc_socket with Unix.Unix_error _ | Sys_error _ -> ());
  (* ... no new requests (readers exit on the drain flag) ... *)
  let conns =
    Mutex.lock t.cmu;
    let c = t.conns in
    t.conns <- [];
    Mutex.unlock t.cmu;
    c
  in
  List.iter (fun (_, dom) -> Domain.join dom) conns;
  (* ... then let the executors finish every admitted job. *)
  Mutex.lock t.qmu;
  t.q_closed <- true;
  Condition.broadcast t.qcv;
  Mutex.unlock t.qmu;
  Array.iter Domain.join executors;
  (* readers/executors already closed everything they finished with
     ([release_conn]); this sweep only covers a conn whose last answer
     raced the executor join, and [close_conn] is idempotent *)
  List.iter (fun (conn, _) -> close_conn conn) conns;
  stats t

(* --- client --------------------------------------------------------------- *)

(** Minimal blocking client for the wire protocol, shared by
    [oglaf serve --connect], the soak benchmark and the tests. *)
module Client = struct
  type t = {
    fd : Unix.file_descr;
    buf : Buffer.t;
    chunk : Bytes.t;
  }

  let connect path =
    ignore_sigpipe ();
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; buf = Buffer.create 4096; chunk = Bytes.create 8192 }

  let send_line c line = write_all c.fd (line ^ "\n")

  (* Pop one buffered line if a full one is present. *)
  let take_line c =
    let text = Buffer.contents c.buf in
    match String.index_opt text '\n' with
    | None -> None
    | Some nl ->
      Buffer.clear c.buf;
      Buffer.add_substring c.buf text (nl + 1) (String.length text - nl - 1);
      let line = String.sub text 0 nl in
      let n = String.length line in
      Some (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
            else line)

  (** Next response line, or [None] on EOF / timeout. *)
  let recv_line ?(timeout_s = 30.0) c =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      match take_line c with
      | Some _ as r -> r
      | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then None
        else
          (match Unix.select [ c.fd ] [] [] (Float.min 0.1 left) with
          | [], _, _ -> go ()
          | _ -> (
            match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
            | 0 -> take_line c  (* EOF: only what's already buffered *)
            | n ->
              Buffer.add_subbytes c.buf c.chunk 0 n;
              go ()
            | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> None
            | exception Unix.Unix_error (EINTR, _, _) -> go ())
          | exception Unix.Unix_error (EINTR, _, _) -> go ())
    in
    go ()

  (** Lock-step request/response. *)
  let request ?timeout_s c line =
    send_line c line;
    recv_line ?timeout_s c

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end
