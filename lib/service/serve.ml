(** Batched kernel serving.

    The paper's workflow compiles a GPI action script once and then
    runs the generated kernel many times (parameter sweeps, per-mesh
    invocations).  [oglaf run] pays the whole
    script -> analysis -> codegen -> parse pipeline on every
    invocation; this module performs that pipeline {e once}
    ({!compile}) and then serves a batch of kernel calls from it
    ({!run_calls}), with a fresh interpreter state per call so
    invocations cannot leak grid state into each other.

    The calls file format is one call per line:
    {[
      # comment
      saxpy(1000, 2.5)
      dot(1000)
    ]}
    Arguments are integer or real literals.  Blank lines and lines
    starting with [#] are skipped.

    Fault tolerance (PR 3): {!run_call} returns
    [(outcome, Fault.t) result] instead of raising — one bad call
    (runtime error, per-call deadline, injected or real worker-pool
    failure) is classified by the {!Fault} taxonomy and the batch
    keeps serving.  {!run_calls} collects a per-batch fault summary
    (counts by class, first few messages) and supports abort-after-K
    ([max_errors]) and retry-with-backoff for transient faults
    ([retries]). *)

open Glaf_fortran
open Glaf_runtime

(** One kernel invocation from a calls file. *)
type call = {
  cl_line : int;  (** 1-based line in the calls file *)
  cl_name : string;  (** function of the script to invoke *)
  cl_args : Ast.expr list;
}

exception Calls_error of int * string

let calls_error ln fmt =
  Format.kasprintf (fun s -> raise (Calls_error (ln, s))) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let parse_arg ln pos s =
  let s = String.trim s in
  if s = "" then calls_error ln "empty argument slot (position %d)" pos
  else
    match int_of_string_opt s with
    | Some n -> Ast.Int_lit n
    | None -> (
      match float_of_string_opt s with
      | Some x -> Ast.Real_lit (x, true)
      | None -> calls_error ln "argument %S is not an integer or real literal" s)

(** Hard per-line cap shared by the calls-file parser and the socket
    wire protocol ({!Listener}): a pathological multi-megabyte request
    line is rejected with a classified parse fault up front instead of
    being trimmed, split and repeatedly copied. *)
let max_call_line_bytes = 1_048_576

let parse_call ln line =
  match String.index_opt line '(' with
  | None ->
    let name = String.trim line in
    if name = "" || not (String.for_all is_ident_char name) then
      calls_error ln "expected 'function(arg, ...)', got %S" line;
    { cl_line = ln; cl_name = name; cl_args = [] }
  | Some op ->
    let name = String.trim (String.sub line 0 op) in
    if name = "" || not (String.for_all is_ident_char name) then
      calls_error ln "bad function name %S" (String.trim (String.sub line 0 op));
    let cp =
      match String.rindex_opt line ')' with
      | None -> calls_error ln "missing ')' in call to %s" name
      | Some cp -> cp
    in
    let trailing =
      String.trim (String.sub line (cp + 1) (String.length line - cp - 1))
    in
    if trailing <> "" then
      calls_error ln "trailing text %S after ')' in call to %s" trailing name;
    let inside = String.trim (String.sub line (op + 1) (cp - op - 1)) in
    let args =
      if inside = "" then []
      else List.mapi (fun i a -> parse_arg ln (i + 1) a)
             (String.split_on_char ',' inside)
    in
    { cl_line = ln; cl_name = name; cl_args = args }

(** Parse a calls file ([#] comments and blank lines skipped).  CRLF
    line endings and blank trailing lines are accepted (each line is
    trimmed before dispatch); a single line over
    {!max_call_line_bytes} is an error, not an allocation storm.
    @raise Calls_error on malformed or oversized lines. *)
let parse_calls text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let ln = i + 1 in
         if String.length line > max_call_line_bytes then
           calls_error ln "line exceeds %d bytes" max_call_line_bytes;
         let s = String.trim line in
         if s = "" || s.[0] = '#' then [] else [ parse_call ln s ])
       lines)

(* --- compile once ------------------------------------------------------- *)

(** A script compiled once for repeated serving: the generated Fortran
    source and its parsed compilation unit. *)
type compiled = {
  co_source : string;  (** generated Fortran source *)
  co_unit : Ast.compilation_unit;
}

(** Build -> auto-parallelize -> generate Fortran -> parse, once.
    [transform] rewrites the parsed unit before it is served — the
    hook a tuning plan ({!Glaf_tune.Plan.apply}) plugs into; the
    default is the identity.
    @raise Glaf_builder.Gpi_script.Script_error on bad scripts. *)
let compile ?(transform = fun cu -> cu) gpi_text =
  let program = Glaf_builder.Gpi_script.run gpi_text in
  let pure = Intrinsics.names () in
  let annotated, _report = Glaf_analysis.Autopar.run ~pure program in
  let src =
    Glaf_codegen.Fortran_gen.to_source
      ~opts:Glaf_codegen.Fortran_gen.default_options annotated
  in
  { co_source = src; co_unit = transform (Parser.parse_string src) }

(** Non-raising {!compile}: script errors come back as [Parse_fault],
    failures of the analysis/codegen/reparse stages as
    [Analysis_fault]. *)
let compile_result ?transform gpi_text =
  match compile ?transform gpi_text with
  | c -> Ok c
  | exception Glaf_builder.Gpi_script.Script_error (line, reason) ->
    Error (Fault.Parse_fault { line; reason })
  | exception Parser.Parse_error (line, reason) ->
    Error
      (Fault.Analysis_fault
         { reason = Printf.sprintf "generated source line %d: %s" line reason })
  | exception e -> Error (Fault.Analysis_fault { reason = Printexc.to_string e })

(** Non-raising {!parse_calls}. *)
let parse_calls_result text =
  match parse_calls text with
  | calls -> Ok calls
  | exception Calls_error (line, reason) ->
    Error (Fault.Parse_fault { line; reason })

(* --- serve -------------------------------------------------------------- *)

(** Result of one served invocation. *)
type outcome = {
  oc_call : call;
  oc_value : Value.t option;  (** function result; [None] for subroutines *)
  oc_output : string;  (** PRINT output captured during the call *)
  oc_time_s : float;  (** wall-clock seconds for this invocation *)
}

(* Map an exception escaping one interpreted call to the structured
   taxonomy.  Anything unrecognised still becomes a runtime fault:
   one bad call must never take the batch down. *)
let classify_exn (call : call) (e : exn) : Fault.t =
  let name = call.cl_name and line = call.cl_line in
  match e with
  | Fault.Cancelled reason -> Fault.Timeout_fault { call = name; line; reason }
  | Fault.Pool_error reason -> Fault.Pool_fault { call = name; line; reason }
  | Glaf_interp.Interp.Fortran_error reason ->
    Fault.Runtime_fault { call = name; line; reason }
  | Value.Runtime_error reason ->
    Fault.Runtime_fault { call = name; line; reason }
  | Farray.Bounds_error reason ->
    Fault.Runtime_fault { call = name; line; reason = "array bounds: " ^ reason }
  | Faultinject.Injected what ->
    Fault.Runtime_fault { call = name; line; reason = "injected fault: " ^ what }
  | Glaf_interp.Interp.Stop_program msg ->
    Fault.Runtime_fault
      {
        call = name;
        line;
        reason =
          (match msg with Some m -> "STOP: " ^ m | None -> "STOP reached");
      }
  | Stack_overflow ->
    Fault.Runtime_fault { call = name; line; reason = "stack overflow" }
  | e ->
    Fault.Runtime_fault { call = name; line; reason = Printexc.to_string e }

let run_call_once ?threads ?sched ?deadline_s ?bytecode compiled call =
  let buf = Buffer.create 64 in
  let token = Fault.make_token ?deadline_s () in
  match
    Fault.with_token token (fun () ->
        let st =
          Glaf_interp.Interp.make_state ~printer:(Buffer.add_string buf)
            compiled.co_unit
        in
        (match threads with
        | Some n -> Glaf_interp.Interp.set_threads st n
        | None -> ());
        (match sched with
        | Some s -> Glaf_interp.Interp.set_schedule st s
        | None -> ());
        (match bytecode with
        | Some b -> Glaf_interp.Interp.set_bytecode st b
        | None -> ());
        let t0 = Unix.gettimeofday () in
        let v = Glaf_interp.Interp.call st call.cl_name call.cl_args in
        let t1 = Unix.gettimeofday () in
        {
          oc_call = call;
          oc_value = v;
          oc_output = Buffer.contents buf;
          oc_time_s = t1 -. t0;
        })
  with
  | oc -> Ok oc
  | exception e -> Error (classify_exn call e)

(** Run one call on a {e fresh} interpreter state (per-invocation grid
    isolation: SAVE variables, module data and allocations of one call
    are invisible to the next).  Never raises: failures come back as a
    classified {!Fault.t}.

    [deadline_s] installs a per-call watchdog token polled at pool
    chunk boundaries and interpreter loop iterations — a runaway
    kernel returns [Timeout_fault] instead of wedging the batch.
    [retries] re-runs calls that failed with a {e transient} fault
    ({!Fault.is_transient}: pool, timeout) up to that many extra
    times, sleeping [backoff_s * 2^attempt] between tries (the pool
    heals dead workers at the next region entry, so a post-crash retry
    normally succeeds). *)
let run_call ?threads ?sched ?deadline_s ?bytecode ?(retries = 0)
    ?(backoff_s = 0.05) compiled call =
  let rec go attempt =
    match run_call_once ?threads ?sched ?deadline_s ?bytecode compiled call with
    | Ok _ as ok -> ok
    | Error f when attempt < retries && Fault.is_transient f ->
      Unix.sleepf (backoff_s *. (2.0 ** float_of_int attempt));
      go (attempt + 1)
    | Error _ as err -> err
  in
  go 0

(** Per-batch fault report. *)
type batch = {
  b_results : (call * (outcome, Fault.t) result) list;
      (** served calls in file order (skipped calls excluded) *)
  b_ok : int;
  b_failed : int;
  b_skipped : int;  (** calls never attempted after a [max_errors] abort *)
  b_by_class : (Fault.cls * int) list;  (** non-zero classes, descending *)
  b_first_faults : Fault.t list;  (** first {!max_reported_faults} faults *)
  b_aborted : bool;
}

let max_reported_faults = 5

let summarize ~results ~skipped ~aborted =
  let ok =
    List.length (List.filter (fun (_, r) -> Result.is_ok r) results)
  in
  let faults =
    List.filter_map
      (function _, Error f -> Some f | _, Ok _ -> None)
      results
  in
  let by_class =
    List.filter_map
      (fun c ->
        match List.length (List.filter (fun f -> Fault.cls_of f = c) faults) with
        | 0 -> None
        | n -> Some (c, n))
      Fault.all_classes
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    b_results = results;
    b_ok = ok;
    b_failed = List.length faults;
    b_skipped = skipped;
    b_by_class = by_class;
    b_first_faults = List.filteri (fun i _ -> i < max_reported_faults) faults;
    b_aborted = aborted;
  }

let run_calls_sequential ?threads ?sched ?deadline_s ?bytecode ?retries
    ?backoff_s ?max_errors ~on_result compiled calls =
  let results = ref [] and failed = ref 0 in
  let rec serve = function
    | [] -> []
    | call :: rest ->
      let r =
        run_call ?threads ?sched ?deadline_s ?bytecode ?retries ?backoff_s
          compiled call
      in
      (match r with Ok _ -> () | Error _ -> incr failed);
      results := (call, r) :: !results;
      on_result call r;
      let aborted =
        match max_errors with Some k -> !failed >= k | None -> false
      in
      if aborted then rest else serve rest
  in
  let skipped = serve calls in
  summarize ~results:(List.rev !results)
    ~skipped:(List.length skipped) ~aborted:(skipped <> [])

(* --- concurrent serving -------------------------------------------------- *)

(* One call's slot in the concurrent scheduler.  [j_attempt] counts
   completed tries; a transient failure with budget left goes back to
   the delayed list with an absolute [j_not_before] instead of
   sleeping in the slot (the retry-backoff bug of the sequential
   path: [Unix.sleepf] there blocks the whole slot, so one flaky call
   would stall a concurrency-N batch by occupying a slot doing
   nothing). *)
type job = {
  j_call : call;
  j_index : int;  (** position in the calls file, for ordered results *)
  mutable j_attempt : int;
  mutable j_not_before : float;  (** absolute earliest next try *)
  mutable j_last_fault : Fault.t option;
}

type slot_result =
  | Pending
  | Done of (call * (outcome, Fault.t) result)
  | Skip  (** never attempted: batch aborted first *)

(* Idle-wakeup gauge: how many times an executor slot went to sleep
   with only backoff timers outstanding.  The sleep targets the
   earliest not-before time exactly, so this stays O(retries) per
   batch rather than O(backoff / poll-interval) —
   test_serve_concurrent pins the bound. *)
let c_idle_wakeups = Atomic.make 0
let idle_wakeups () = Atomic.get c_idle_wakeups
let reset_idle_wakeups () = Atomic.set c_idle_wakeups 0

(* Serve the batch on [concurrency] executor domains pulling jobs from
   a shared queue.  Each in-flight call owns a fresh interpreter state
   and its own cancellation token (the ambient token is per-domain),
   and its parallel regions multiplex onto the shared worker pool.
   [on_result] is still emitted in file order: results are held back
   until every earlier call has resolved. *)
let run_calls_concurrent ~concurrency ?threads ?sched ?deadline_s ?bytecode
    ?(retries = 0) ?(backoff_s = 0.05) ?max_errors ~on_result compiled calls =
  let n = List.length calls in
  let results = Array.make n Pending in
  let mu = Mutex.create () and cv = Condition.create () in
  let ready : job Queue.t = Queue.create () in
  let delayed = ref [] in
  let active = ref 0 and failed = ref 0 in
  let aborted = ref false in
  let next_emit = ref 0 in
  List.iteri
    (fun i c ->
      Queue.push
        { j_call = c; j_index = i; j_attempt = 0; j_not_before = 0.;
          j_last_fault = None }
        ready)
    calls;
  (* under [mu]: stream every result whose predecessors have resolved *)
  let emit_in_order () =
    let continue = ref true in
    while !continue && !next_emit < n do
      match results.(!next_emit) with
      | Pending -> continue := false
      | Skip -> incr next_emit
      | Done (c, r) ->
        on_result c r;
        incr next_emit
    done
  in
  (* under [mu] *)
  let record j r =
    results.(j.j_index) <- Done (j.j_call, r);
    (match r with Ok _ -> () | Error _ -> incr failed);
    (match max_errors with
    | Some k when !failed >= k && not !aborted ->
      aborted := true;
      (* the abort cut: never-attempted jobs are skipped (exactly the
         sequential semantics); jobs mid-backoff have already failed
         at least once, so they are recorded as their last fault *)
      let flush j =
        match j.j_last_fault with
        | None -> results.(j.j_index) <- Skip
        | Some f ->
          results.(j.j_index) <- Done (j.j_call, Error f);
          incr failed
      in
      Queue.iter flush ready;
      Queue.clear ready;
      List.iter flush !delayed;
      delayed := []
    | _ -> ());
    emit_in_order ()
  in
  let now () = Unix.gettimeofday () in
  let rec slot_loop () =
    Mutex.lock mu;
    (* promote delayed jobs whose backoff has elapsed *)
    let t = now () in
    let due, still = List.partition (fun j -> j.j_not_before <= t) !delayed in
    delayed := still;
    List.iter (fun j -> Queue.push j ready) due;
    if not (Queue.is_empty ready) then begin
      let j = Queue.pop ready in
      incr active;
      Mutex.unlock mu;
      let r =
        run_call_once ?threads ?sched ?deadline_s ?bytecode compiled j.j_call
      in
      Mutex.lock mu;
      decr active;
      (match r with
      | Error f when Fault.is_transient f && j.j_attempt < retries && not !aborted ->
        (* release the slot for the backoff: requeue with a not-before
           time instead of sleeping here *)
        j.j_last_fault <- Some f;
        j.j_not_before <-
          now () +. (backoff_s *. (2.0 ** float_of_int j.j_attempt));
        j.j_attempt <- j.j_attempt + 1;
        delayed := j :: !delayed
      | r -> record j r);
      Condition.broadcast cv;
      Mutex.unlock mu;
      slot_loop ()
    end
    else if !delayed <> [] then begin
      (* Only backoffs outstanding: sleep until the earliest one is
         due (the stdlib has no timed condition wait).  Sleeping the
         full interval — not a capped poll-sleep — keeps a slot from
         busy-spinning through a long backoff.  Progress never hangs
         on this timer: any slot that requeues a job with an earlier
         not-before re-enters this loop itself and either runs ready
         work or sleeps until the new minimum, so every delayed job
         is covered by a slot that is awake, working, or due to wake
         no later than needed. *)
      let due_at =
        List.fold_left (fun a j -> Float.min a j.j_not_before) infinity !delayed
      in
      Atomic.incr c_idle_wakeups;
      Mutex.unlock mu;
      Unix.sleepf (Float.max 0.0005 (due_at -. now ()));
      slot_loop ()
    end
    else if !active > 0 then begin
      (* an in-flight call may yet requeue a retry *)
      Condition.wait cv mu;
      Mutex.unlock mu;
      slot_loop ()
    end
    else begin
      (* nothing queued, delayed or running: batch complete *)
      Condition.broadcast cv;
      Mutex.unlock mu
    end
  in
  let helpers =
    Array.init (max 0 (min concurrency n - 1)) (fun _ -> Domain.spawn slot_loop)
  in
  slot_loop ();
  Array.iter Domain.join helpers;
  let results = Array.to_list results in
  let ordered =
    List.filter_map (function Done cr -> Some cr | Pending | Skip -> None) results
  in
  let skipped =
    List.length (List.filter (function Skip | Pending -> true | Done _ -> false) results)
  in
  summarize ~results:ordered ~skipped ~aborted:!aborted

(** Serve a batch of calls.  A failing call is recorded and serving
    {e continues} with the next call; [max_errors] aborts the
    remainder of the batch once that many calls have failed
    ([b_skipped]/[b_aborted] report the cut).  [on_result] streams
    each result in file order (the CLI prints from it).

    [concurrency] overlaps that many independent calls, each with its
    own interpreter state and deadline token, multiplexing their
    parallel regions onto the shared worker pool; results, ordering
    and fault accounting match sequential serving (and for
    deterministic schedules the per-call outputs are bit-identical —
    chunk plans and reduction combining order do not depend on which
    worker runs a chunk). *)
let run_calls ?(concurrency = 1) ?threads ?sched ?deadline_s ?bytecode
    ?retries ?backoff_s ?max_errors ?(on_result = fun _ _ -> ()) compiled
    calls =
  if concurrency <= 1 then
    run_calls_sequential ?threads ?sched ?deadline_s ?bytecode ?retries
      ?backoff_s ?max_errors ~on_result compiled calls
  else
    run_calls_concurrent ~concurrency ?threads ?sched ?deadline_s ?bytecode
      ?retries ?backoff_s ?max_errors ~on_result compiled calls

let pp_args ppf = function
  | [] -> Format.pp_print_string ppf "()"
  | args ->
    Format.fprintf ppf "(%s)"
      (String.concat ", " (List.map Pp_ast.expr_to_string args))

let pp_outcome ppf oc =
  Format.fprintf ppf "[line %d] %s%a -> %s  (%.3f ms)"
    oc.oc_call.cl_line oc.oc_call.cl_name pp_args oc.oc_call.cl_args
    (match oc.oc_value with
    | Some v -> Value.to_string v
    | None -> "(subroutine completed)")
    (oc.oc_time_s *. 1e3);
  if oc.oc_output <> "" then
    Format.fprintf ppf "@\n%s" (String.trim oc.oc_output)

(** One-line summary plus the first few fault messages, e.g. after a
    partially-failed batch. *)
let pp_batch_summary ppf b =
  Format.fprintf ppf "batch: %d ok, %d failed%s of %d calls"
    b.b_ok b.b_failed
    (if b.b_skipped > 0 then Printf.sprintf ", %d skipped (batch aborted)" b.b_skipped
     else "")
    (b.b_ok + b.b_failed + b.b_skipped);
  if b.b_by_class <> [] then begin
    Format.fprintf ppf "@\nfaults by class:";
    List.iter
      (fun (c, n) -> Format.fprintf ppf " %s:%d" (Fault.cls_name c) n)
      b.b_by_class;
    Format.fprintf ppf "@\nfirst faults:";
    List.iter
      (fun f -> Format.fprintf ppf "@\n  %s" (Fault.to_string f))
      b.b_first_faults
  end

(** Machine-readable batch summary (same fault shape as
    {!Fault.to_json}). *)
let batch_to_json b =
  Printf.sprintf
    "{\"ok\":%d,\"failed\":%d,\"skipped\":%d,\"aborted\":%b,\"by_class\":{%s},\"faults\":[%s]}"
    b.b_ok b.b_failed b.b_skipped b.b_aborted
    (String.concat ","
       (List.map
          (fun (c, n) -> Printf.sprintf "\"%s\":%d" (Fault.cls_name c) n)
          b.b_by_class))
    (String.concat "," (List.map Fault.to_json b.b_first_faults))
