(** Batched kernel serving.

    The paper's workflow compiles a GPI action script once and then
    runs the generated kernel many times (parameter sweeps, per-mesh
    invocations).  [oglaf run] pays the whole
    script -> analysis -> codegen -> parse pipeline on every
    invocation; this module performs that pipeline {e once}
    ({!compile}) and then serves a batch of kernel calls from it
    ({!run_calls}), with a fresh interpreter state per call so
    invocations cannot leak grid state into each other.

    The calls file format is one call per line:
    {[
      # comment
      saxpy(1000, 2.5)
      dot(1000)
    ]}
    Arguments are integer or real literals.  Blank lines and lines
    starting with [#] are skipped. *)

open Glaf_fortran
open Glaf_runtime

(** One kernel invocation from a calls file. *)
type call = {
  cl_line : int;  (** 1-based line in the calls file *)
  cl_name : string;  (** function of the script to invoke *)
  cl_args : Ast.expr list;
}

exception Calls_error of int * string

let calls_error ln fmt =
  Format.kasprintf (fun s -> raise (Calls_error (ln, s))) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let parse_arg ln s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n -> Ast.Int_lit n
  | None -> (
    match float_of_string_opt s with
    | Some x -> Ast.Real_lit (x, true)
    | None -> calls_error ln "argument %S is not an integer or real literal" s)

let parse_call ln line =
  match String.index_opt line '(' with
  | None ->
    let name = String.trim line in
    if name = "" || not (String.for_all is_ident_char name) then
      calls_error ln "expected 'function(arg, ...)', got %S" line;
    { cl_line = ln; cl_name = name; cl_args = [] }
  | Some op ->
    let name = String.trim (String.sub line 0 op) in
    if name = "" || not (String.for_all is_ident_char name) then
      calls_error ln "bad function name %S" (String.trim (String.sub line 0 op));
    let rest = String.sub line (op + 1) (String.length line - op - 1) in
    let rest = String.trim rest in
    if String.length rest = 0 || rest.[String.length rest - 1] <> ')' then
      calls_error ln "missing ')' in call to %s" name;
    let inside = String.trim (String.sub rest 0 (String.length rest - 1)) in
    let args =
      if inside = "" then []
      else List.map (parse_arg ln) (String.split_on_char ',' inside)
    in
    { cl_line = ln; cl_name = name; cl_args = args }

(** Parse a calls file ([#] comments and blank lines skipped).
    @raise Calls_error on malformed lines. *)
let parse_calls text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let ln = i + 1 in
         let s = String.trim line in
         if s = "" || s.[0] = '#' then [] else [ parse_call ln s ])
       lines)

(* --- compile once ------------------------------------------------------- *)

(** A script compiled once for repeated serving: the generated Fortran
    source and its parsed compilation unit. *)
type compiled = {
  co_source : string;  (** generated Fortran source *)
  co_unit : Ast.compilation_unit;
}

(** Build -> auto-parallelize -> generate Fortran -> parse, once.
    @raise Glaf_builder.Gpi_script.Script_error on bad scripts. *)
let compile gpi_text =
  let program = Glaf_builder.Gpi_script.run gpi_text in
  let pure = Intrinsics.names () in
  let annotated, _report = Glaf_analysis.Autopar.run ~pure program in
  let src =
    Glaf_codegen.Fortran_gen.to_source
      ~opts:Glaf_codegen.Fortran_gen.default_options annotated
  in
  { co_source = src; co_unit = Parser.parse_string src }

(* --- serve -------------------------------------------------------------- *)

(** Result of one served invocation. *)
type outcome = {
  oc_call : call;
  oc_value : Value.t option;  (** function result; [None] for subroutines *)
  oc_output : string;  (** PRINT output captured during the call *)
  oc_time_s : float;  (** wall-clock seconds for this invocation *)
}

(** Run one call on a {e fresh} interpreter state (per-invocation grid
    isolation: SAVE variables, module data and allocations of one call
    are invisible to the next).
    @raise Glaf_interp.Interp.Fortran_error on runtime errors. *)
let run_call ?threads ?sched compiled call =
  let buf = Buffer.create 64 in
  let st =
    Glaf_interp.Interp.make_state ~printer:(Buffer.add_string buf)
      compiled.co_unit
  in
  (match threads with
  | Some n -> Glaf_interp.Interp.set_threads st n
  | None -> ());
  (match sched with
  | Some s -> Glaf_interp.Interp.set_schedule st s
  | None -> ());
  let t0 = Unix.gettimeofday () in
  let v = Glaf_interp.Interp.call st call.cl_name call.cl_args in
  let t1 = Unix.gettimeofday () in
  {
    oc_call = call;
    oc_value = v;
    oc_output = Buffer.contents buf;
    oc_time_s = t1 -. t0;
  }

(** Serve a batch of calls in file order. *)
let run_calls ?threads ?sched compiled calls =
  List.map (run_call ?threads ?sched compiled) calls

let pp_outcome ppf oc =
  Format.fprintf ppf "%s%s -> %s  (%.3f ms)"
    oc.oc_call.cl_name
    (match oc.oc_call.cl_args with
    | [] -> "()"
    | args ->
      "("
      ^ String.concat ", "
          (List.map
             (function
               | Ast.Int_lit n -> string_of_int n
               | Ast.Real_lit (x, _) -> string_of_float x
               | _ -> "?")
             args)
      ^ ")")
    (match oc.oc_value with
    | Some v -> Value.to_string v
    | None -> "(subroutine completed)")
    (oc.oc_time_s *. 1e3);
  if oc.oc_output <> "" then
    Format.fprintf ppf "@\n%s" (String.trim oc.oc_output)
