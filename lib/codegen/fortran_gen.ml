(** Automatic Fortran code generation from the grid IR.

    Implements the paper's §3 integration features:
    - §3.1 grids in existing modules → [USE <module>], no declaration;
    - §3.2 COMMON-block grids → grouped declarations plus
      [COMMON /<name>/ v1, v2, ...];
    - §3.3 module-scope grids → declared in the generated module;
    - §3.4 void return type → [SUBROUTINE] + [CALL] at call sites;
    - §3.5 elements of existing TYPE variables → [var%element];
    - §3.6 library functions map to Fortran intrinsics by name.

    Output is a {!Glaf_fortran.Ast.compilation_unit}; render it with
    {!Glaf_fortran.Pp_ast.to_string} for "human-readable, compatible
    code", or feed it straight to the interpreter. *)

open Glaf_ir
open Glaf_fortran

type options = {
  emit_omp : bool;  (** parallel (directives honoured) vs serial codegen *)
  globals_module : string;
      (** name of the generated module holding Global Scope grids *)
}

let default_options = { emit_omp = true; globals_module = "glaf_globals" }

let base_of_elem (t : Types.elem_type) : Ast.base_type =
  match t with
  | Types.T_int -> Ast.Integer
  | Types.T_real -> Ast.Real
  | Types.T_real8 -> Ast.Real8
  | Types.T_logical -> Ast.Logical
  | Types.T_string -> Ast.Character (Some 256)

let record_type_name grid_name = grid_name ^ "_t"

(** {1 Expressions}

    [tv] is the §3.5 lookup: the enclosing existing-TYPE variable of a
    grid, if any ([Type_element] storage), so that every reference —
    in statements {e and} inside expressions — is prefixed
    [var%element]. *)

let rec gen_expr tv (e : Expr.t) : Ast.expr =
  match e with
  | Expr.Int_lit n -> Ast.Int_lit n
  | Expr.Real_lit x -> Ast.Real_lit (x, true)
  | Expr.Bool_lit b -> Ast.Logical_lit b
  | Expr.Str_lit s -> Ast.Str_lit s
  | Expr.Ref r -> Ast.Desig (gen_ref tv r)
  | Expr.Unop (Expr.Neg, a) -> Ast.Unop (Ast.Neg, gen_expr tv a)
  | Expr.Unop (Expr.Not, a) -> Ast.Unop (Ast.Not, gen_expr tv a)
  | Expr.Binop (op, a, b) -> gen_binop tv op a b
  | Expr.Call (f, args) -> Ast.Desig [ (f, List.map (gen_expr tv) args) ]

and gen_binop tv op a b =
  let mk o = Ast.Binop (o, gen_expr tv a, gen_expr tv b) in
  match op with
  | Expr.Add -> mk Ast.Add
  | Expr.Sub -> mk Ast.Sub
  | Expr.Mul -> mk Ast.Mul
  | Expr.Div -> mk Ast.Div
  | Expr.Pow -> mk Ast.Pow
  | Expr.Mod -> Ast.Desig [ ("mod", [ gen_expr tv a; gen_expr tv b ]) ]
  | Expr.Eq -> mk Ast.Eq
  | Expr.Ne -> mk Ast.Ne
  | Expr.Lt -> mk Ast.Lt
  | Expr.Le -> mk Ast.Le
  | Expr.Gt -> mk Ast.Gt
  | Expr.Ge -> mk Ast.Ge
  | Expr.And -> mk Ast.And
  | Expr.Or -> mk Ast.Or

(** A grid reference as a Fortran designator.  [Type_element] storage
    prefixes the existing TYPE variable (§3.5); fields of GLAF-declared
    record grids become [%field] part-refs. *)
and gen_ref tv (r : Expr.gref) : Ast.designator =
  let indices = List.map (gen_expr tv) r.Expr.indices in
  let main =
    match r.Expr.field with
    | None -> [ (r.Expr.grid, indices) ]
    | Some f -> [ (r.Expr.grid, indices); (f, []) ]
  in
  match tv r.Expr.grid with
  | Some type_var -> (type_var, []) :: main
  | None -> main

let no_tv (_ : string) : string option = None

(** {1 Statements} *)

type fctx = {
  opts : options;
  fname : string;  (** function being generated (for RETURN value) *)
  type_var_of : string -> string option;
      (** §3.5: enclosing TYPE variable of a grid, if any *)
}

let gen_directive (d : Stmt.directive) : Ast.omp_do =
  {
    Ast.omp_do_default with
    Ast.omp_private = d.Stmt.private_vars;
    omp_reduction =
      List.map
        (fun (op, v) ->
          let o =
            match op with
            | Stmt.Rsum -> Ast.Osum
            | Stmt.Rprod -> Ast.Oprod
            | Stmt.Rmax -> Ast.Omax
            | Stmt.Rmin -> Ast.Omin
          in
          (o, [ v ]))
        d.Stmt.reductions;
    omp_collapse = d.Stmt.collapse;
    omp_num_threads = Option.map (fun n -> Ast.Int_lit n) d.Stmt.num_threads;
    omp_schedule =
      Option.map
        (function
          | Stmt.Sched_static -> Ast.Static
          | Stmt.Sched_static_chunk k -> Ast.Static_chunk k
          | Stmt.Sched_dynamic k -> Ast.Dynamic k
          | Stmt.Sched_guided k -> Ast.Guided k)
        d.Stmt.schedule;
  }

let rec gen_stmts ctx stmts = List.concat_map (gen_stmt ctx) stmts

and gen_stmt ctx (s : Stmt.t) : Ast.stmt list =
  let tv = ctx.type_var_of in
  let ref_ r = gen_ref tv r in
  let ge e = gen_expr tv e in
  match s with
  | Stmt.Assign (r, e) -> [ Ast.Assign (ref_ r, ge e) ]
  | Stmt.Atomic (r, e) -> [ Ast.Omp_atomic (Ast.Assign (ref_ r, ge e)) ]
  | Stmt.If (branches, else_) ->
    [
      Ast.If_block
        ( List.map (fun (c, b) -> (ge c, gen_stmts ctx b)) branches,
          gen_stmts ctx else_ );
    ]
  | Stmt.For l ->
    let do_omp =
      if ctx.opts.emit_omp then Option.map gen_directive l.Stmt.directive
      else None
    in
    [
      Ast.Do
        {
          Ast.do_var = l.Stmt.index;
          do_lo = ge l.Stmt.lo;
          do_hi = ge l.Stmt.hi;
          do_step =
            (match l.Stmt.step with
            | Expr.Int_lit 1 -> None
            | st -> Some (ge st));
          do_body = gen_stmts ctx l.Stmt.body;
          do_omp;
        };
    ]
  | Stmt.While (c, body) -> [ Ast.Do_while (ge c, gen_stmts ctx body) ]
  | Stmt.Call (f, args) -> [ Ast.Call (f, List.map ge args) ]
  | Stmt.Return None -> [ Ast.Return ]
  | Stmt.Return (Some e) ->
    (* FUNCTION result: assign to the function name, then return *)
    [ Ast.Assign ([ (ctx.fname, []) ], ge e); Ast.Return ]
  | Stmt.Exit_loop -> [ Ast.Exit ]
  | Stmt.Cycle_loop -> [ Ast.Cycle ]
  | Stmt.Critical body -> [ Ast.Omp_critical (gen_stmts ctx body) ]
  | Stmt.Comment c -> [ Ast.Comment c ]

(** {1 Declarations} *)

let gen_extent (e : Grid.extent) : Ast.expr =
  match e with
  | Grid.Fixed n -> Ast.Int_lit n
  | Grid.Sym s -> Ast.var s

let dims_of_grid (g : Grid.t) =
  List.map
    (fun (d : Grid.dim) ->
      let lo =
        if d.Grid.lower = 1 then None else Some (Ast.Int_lit d.Grid.lower)
      in
      (lo, gen_extent d.Grid.extent))
    g.Grid.dims

(* A function-local grid is generated with deferred shape +
   ALLOCATABLE when any extent is symbolic (GLAF allocates it at
   entry).  Dummy arguments keep explicit shapes. *)
let is_dynamic (g : Grid.t) =
  g.Grid.storage = Grid.Local
  && (not (Grid.is_scalar g))
  && (g.Grid.allocatable || Grid.extent_deps g <> [])

let decl_of_grid ?(attrs = []) ?(module_level = false) (g : Grid.t) :
    Ast.decl list =
  (* scalar initializers are legal as initialized declarations at
     module scope; function-local grids are instead initialized by
     statements (a local initializer would imply SAVE) *)
  let scalar_init =
    if not (module_level && Grid.is_scalar g) then None
    else
      match g.Grid.init with
      | Grid.Zero_init -> Some (Ast.Real_lit (0.0, true))
      | Grid.Const_init x -> Some (Ast.Real_lit (x, true))
      | Grid.No_init | Grid.Data_init _ -> None
  in
  let mk_entity ~deferred =
    {
      Ast.ent_name = g.Grid.name;
      ent_dims = (if Grid.is_scalar g || deferred then None else Some (dims_of_grid g));
      ent_deferred = (if deferred then Some (Grid.num_dims g) else None);
      ent_init = scalar_init;
    }
  in
  match g.Grid.kind with
  | Grid.Dense t ->
    let deferred = is_dynamic g in
    let attrs =
      attrs
      @ (if deferred then [ Ast.Allocatable ] else [])
      @ if g.Grid.save then [ Ast.Save ] else []
    in
    [ Ast.Var_decl { base = base_of_elem t; attrs; entities = [ mk_entity ~deferred ] } ]
  | Grid.Record fields ->
    (* AoS: derived TYPE + variable of that type *)
    let tname = record_type_name g.Grid.name in
    let field_decls =
      List.map
        (fun (fn, ft) ->
          Ast.Var_decl
            {
              base = base_of_elem ft;
              attrs = [];
              entities =
                [
                  {
                    Ast.ent_name = fn;
                    ent_dims = None;
                    ent_deferred = None;
                    ent_init = None;
                  };
                ];
            })
        fields
    in
    [
      Ast.Type_def { type_name = tname; fields = field_decls };
      Ast.Var_decl
        {
          base = Ast.Derived tname;
          attrs = attrs @ (if g.Grid.save then [ Ast.Save ] else []);
          entities = [ mk_entity ~deferred:false ];
        };
    ]

(* Comment header carrying the grid's GPI caption/comment, as the
   paper's Fig. 1 shows for generated C. *)
let grid_comment (g : Grid.t) : Ast.decl list =
  if g.Grid.comment = "" then []
  else [ Ast.Decl_comment g.Grid.comment ]

(** Allocation prologue for dynamic local arrays.  With [save] set (the
    no-reallocation option), allocation happens only on first entry. *)
let allocation_prologue (f : Func.t) : Ast.stmt list =
  List.concat_map
    (fun (g : Grid.t) ->
      let is_record =
        match g.Grid.kind with
        | Grid.Record _ -> true
        | Grid.Dense _ -> false
      in
      (* record grids are declared as automatic derived-type arrays,
         not allocatables *)
      if is_record || not (is_dynamic g && g.Grid.storage = Grid.Local) then
        []
      else
        let alloc =
          Ast.Allocate
            [
              ( [ (g.Grid.name, []) ],
                List.map
                  (fun (d : Grid.dim) ->
                    match (d.Grid.lower, gen_extent d.Grid.extent) with
                    | 1, hi -> hi
                    | lo, hi -> Ast.Section (Some (Ast.Int_lit lo), Some hi))
                  g.Grid.dims );
            ]
        in
        if g.Grid.save then
          [
            Ast.If_block
              ( [
                  ( Ast.Unop
                      ( Ast.Not,
                        Ast.Desig
                          [ ("allocated", [ Ast.var g.Grid.name ]) ] ),
                    [ alloc ] );
                ],
                [] );
          ]
        else [ alloc ])
    (Func.local_grids f)

(** Initialization statements from grid [init] specs. *)
let init_stmts (f : Func.t) : Ast.stmt list =
  List.concat_map
    (fun (g : Grid.t) ->
      let name = g.Grid.name in
      match g.Grid.init with
      | Grid.No_init -> []
      | Grid.Zero_init ->
        if Grid.is_scalar g then
          [ Ast.Assign ([ (name, []) ], Ast.Real_lit (0.0, true)) ]
        else [ Ast.Assign ([ (name, []) ], Ast.Real_lit (0.0, true)) ]
      | Grid.Const_init x -> [ Ast.Assign ([ (name, []) ], Ast.Real_lit (x, true)) ]
      | Grid.Data_init xs ->
        List.mapi
          (fun i x ->
            Ast.Assign
              ( [ (name, [ Ast.Int_lit (i + 1) ]) ],
                Ast.Real_lit (x, true) ))
          xs)
    (Func.local_grids f)

(** {1 Functions} *)

let type_var_lookup (f : Func.t) name =
  match Func.find_grid f name with
  | Some { Grid.storage = Grid.Type_element (_, tv); _ } -> Some tv
  | _ -> None

let gen_function ?(opts = default_options) ~uses_globals (f : Func.t) :
    Ast.subprogram =
  let ctx = { opts; fname = f.Func.name; type_var_of = type_var_lookup f } in
  (* 1. USE statements (§3.1/§3.5) *)
  let uses = List.map (fun m -> Ast.Use (m, [])) (Func.used_modules f) in
  let uses =
    if uses_globals then uses @ [ Ast.Use (opts.globals_module, []) ] else uses
  in
  (* 2. argument declarations, in parameter order *)
  let arg_decls =
    List.concat_map
      (fun g -> grid_comment g @ decl_of_grid g)
      (Func.arg_grids f)
  in
  (* 3. local declarations; COMMON members are local declarations too *)
  let locals = Func.local_grids f in
  let local_decls =
    List.concat_map (fun g -> grid_comment g @ decl_of_grid g) locals
  in
  (* 4. COMMON statements, grouped per block (§3.2) *)
  let common_decls =
    List.map
      (fun (block, members) ->
        Ast.Common (block, List.map (fun (g : Grid.t) -> g.Grid.name) members))
      (Func.common_blocks f)
  in
  (* implicit loop indices used but never declared as grids *)
  let declared =
    List.map (fun (g : Grid.t) -> g.Grid.name) f.Func.grids
  in
  let body_stmts = Func.all_stmts f in
  let index_names =
    Stmt.fold_stmts
      (fun acc s ->
        match s with
        | Stmt.For l -> l.Stmt.index :: acc
        | _ -> acc)
      [] body_stmts
    |> List.sort_uniq String.compare
    |> List.filter (fun n -> not (List.mem n declared))
  in
  let index_decls =
    if index_names = [] then []
    else
      [
        Ast.Var_decl
          {
            base = Ast.Integer;
            attrs = [];
            entities =
              List.map
                (fun n ->
                  {
                    Ast.ent_name = n;
                    ent_dims = None;
                    ent_deferred = None;
                    ent_init = None;
                  })
                index_names;
          };
      ]
  in
  let body =
    allocation_prologue f @ init_stmts f
    @ List.concat_map
        (fun (st : Func.step) ->
          Ast.Comment ("step: " ^ st.Func.label) :: gen_stmts ctx st.Func.body)
        f.Func.steps
  in
  {
    Ast.sub_name = f.Func.name;
    sub_kind =
      (match f.Func.return with
      | None -> `Subroutine
      | Some t -> `Function (Some (base_of_elem t)));
    sub_args = f.Func.params;
    sub_decls =
      uses @ [ Ast.Implicit_none ] @ arg_decls @ local_decls @ index_decls
      @ common_decls;
    sub_body = body;
  }

(** {1 Whole programs} *)

let module_grid_decls grids =
  List.concat_map
    (fun g -> grid_comment g @ decl_of_grid ~module_level:true g)
    grids

(** Generate a compilation unit: one Fortran MODULE per IR module
    (module-scope grids in its specification part, functions under
    CONTAINS), preceded by a globals module when the Global Scope holds
    GLAF-declared grids. *)
let gen_program ?(opts = default_options) (p : Ir_module.program) :
    Ast.compilation_unit =
  let own_globals =
    List.filter
      (fun (g : Grid.t) -> not (Grid.externally_declared g))
      p.Ir_module.globals
  in
  let uses_globals = own_globals <> [] in
  let globals_unit =
    if uses_globals then
      [
        Ast.Module
          {
            Ast.mod_name = opts.globals_module;
            mod_decls = Ast.Implicit_none :: module_grid_decls own_globals;
            mod_contains = [];
          };
      ]
    else []
  in
  let gen_module (m : Ir_module.t) =
    Ast.Module
      {
        Ast.mod_name = m.Ir_module.name;
        mod_decls =
          (if uses_globals then [ Ast.Use (opts.globals_module, []) ] else [])
          @ [ Ast.Implicit_none ]
          @ module_grid_decls m.Ir_module.module_grids;
        mod_contains =
          List.map (gen_function ~opts ~uses_globals) m.Ir_module.functions;
      }
  in
  globals_unit @ List.map gen_module p.Ir_module.modules

(** Render directly to Fortran source text. *)
let to_source ?opts p = Pp_ast.to_string (gen_program ?opts p)
