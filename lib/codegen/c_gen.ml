(** C code generation from the grid IR (GLAF's multi-language story).

    Produces compilable C99 with OpenMP pragmas.  Used for parity
    demonstrations and SLOC comparisons; execution in this repo goes
    through the Fortran backend + interpreter.  Grids become
    heap-allocated flat arrays in row-major order; COMMON blocks map
    to a struct of globals per block; existing-module variables map to
    extern declarations (integration with legacy C would include the
    corresponding header). *)

open Glaf_ir

let ctype (t : Types.elem_type) = Types.c_name t

type writer = {
  buf : Buffer.t;
  mutable indent : int;
}

let line w fmt =
  Format.kasprintf
    (fun s ->
      Buffer.add_string w.buf (String.make (2 * w.indent) ' ');
      Buffer.add_string w.buf s;
      Buffer.add_char w.buf '\n')
    fmt

let rec gen_expr (e : Expr.t) : string =
  match e with
  | Expr.Int_lit n -> string_of_int n
  | Expr.Real_lit x ->
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
    else Printf.sprintf "%.17g" x
  | Expr.Bool_lit true -> "1"
  | Expr.Bool_lit false -> "0"
  | Expr.Str_lit s -> Printf.sprintf "%S" s
  | Expr.Ref r -> gen_ref r
  | Expr.Unop (Expr.Neg, a) -> Printf.sprintf "(-%s)" (gen_expr a)
  | Expr.Unop (Expr.Not, a) -> Printf.sprintf "(!%s)" (gen_expr a)
  | Expr.Binop (Expr.Pow, a, b) ->
    Printf.sprintf "pow(%s, %s)" (gen_expr a) (gen_expr b)
  | Expr.Binop (Expr.Mod, a, b) ->
    Printf.sprintf "(%s %% %s)" (gen_expr a) (gen_expr b)
  | Expr.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (gen_expr a) (c_binop op) (gen_expr b)
  | Expr.Call (f, args) ->
    Printf.sprintf "%s(%s)" (c_function f)
      (String.concat ", " (List.map gen_expr args))

and c_binop (op : Expr.binop) =
  match op with
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"
  | Expr.Eq -> "=="
  | Expr.Ne -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.And -> "&&"
  | Expr.Or -> "||"
  | Expr.Pow | Expr.Mod -> assert false

(* Fortran intrinsic -> libm/C equivalent *)
and c_function f =
  match String.lowercase_ascii f with
  | "abs" | "dabs" -> "fabs"
  | "alog" | "dlog" -> "log"
  | "alog10" -> "log10"
  | "amax1" | "dmax1" | "max" -> "fmax"
  | "amin1" | "dmin1" | "min" -> "fmin"
  | "dsqrt" -> "sqrt"
  | "dexp" -> "exp"
  | "real" | "float" | "dble" | "sngl" -> "(double)"
  | "int" | "ifix" -> "(int)"
  | f -> f

(* Row-major flattening: indices are 1-based in the IR (Fortran
   heritage); C arrays are 0-based, so each index is shifted. *)
and gen_ref (r : Expr.gref) : string =
  let name =
    match r.Expr.field with
    | Some f -> Printf.sprintf "%s.%s" r.Expr.grid f
    | None -> r.Expr.grid
  in
  match r.Expr.indices with
  | [] -> name
  | idx ->
    let subs =
      List.map (fun e -> Printf.sprintf "[(%s) - 1]" (gen_expr e)) idx
    in
    name ^ String.concat "" subs

let gen_directive_pragma (d : Stmt.directive) =
  let clauses = Buffer.create 32 in
  if d.Stmt.private_vars <> [] then
    Buffer.add_string clauses
      (Printf.sprintf " private(%s)" (String.concat ", " d.Stmt.private_vars));
  List.iter
    (fun (op, v) ->
      let o =
        match op with
        | Stmt.Rsum -> "+"
        | Stmt.Rprod -> "*"
        | Stmt.Rmax -> "max"
        | Stmt.Rmin -> "min"
      in
      Buffer.add_string clauses (Printf.sprintf " reduction(%s:%s)" o v))
    d.Stmt.reductions;
  if d.Stmt.collapse > 1 then
    Buffer.add_string clauses (Printf.sprintf " collapse(%d)" d.Stmt.collapse);
  (match d.Stmt.num_threads with
  | Some n -> Buffer.add_string clauses (Printf.sprintf " num_threads(%d)" n)
  | None -> ());
  (match d.Stmt.schedule with
  | Some Stmt.Sched_static -> Buffer.add_string clauses " schedule(static)"
  | Some (Stmt.Sched_static_chunk k) ->
    Buffer.add_string clauses (Printf.sprintf " schedule(static, %d)" k)
  | Some (Stmt.Sched_dynamic k) ->
    Buffer.add_string clauses (Printf.sprintf " schedule(dynamic, %d)" k)
  | Some (Stmt.Sched_guided 1) -> Buffer.add_string clauses " schedule(guided)"
  | Some (Stmt.Sched_guided k) ->
    Buffer.add_string clauses (Printf.sprintf " schedule(guided, %d)" k)
  | None -> ());
  "#pragma omp parallel for" ^ Buffer.contents clauses

let rec gen_stmts w ~emit_omp stmts =
  List.iter (gen_stmt w ~emit_omp) stmts

and gen_stmt w ~emit_omp (s : Stmt.t) =
  match s with
  | Stmt.Assign (r, e) -> line w "%s = %s;" (gen_ref r) (gen_expr e)
  | Stmt.Atomic (r, e) ->
    if emit_omp then line w "#pragma omp atomic update";
    line w "%s = %s;" (gen_ref r) (gen_expr e)
  | Stmt.If (branches, else_) ->
    List.iteri
      (fun i (c, body) ->
        line w "%sif (%s) {" (if i = 0 then "" else "} else ") (gen_expr c);
        w.indent <- w.indent + 1;
        gen_stmts w ~emit_omp body;
        w.indent <- w.indent - 1)
      branches;
    if else_ <> [] then begin
      line w "} else {";
      w.indent <- w.indent + 1;
      gen_stmts w ~emit_omp else_;
      w.indent <- w.indent - 1
    end;
    line w "}"
  | Stmt.For l ->
    (match l.Stmt.directive with
    | Some d when emit_omp -> line w "%s" (gen_directive_pragma d)
    | _ -> ());
    line w "for (int %s = %s; %s <= %s; %s += %s) {" l.Stmt.index
      (gen_expr l.Stmt.lo) l.Stmt.index (gen_expr l.Stmt.hi) l.Stmt.index
      (gen_expr l.Stmt.step);
    w.indent <- w.indent + 1;
    gen_stmts w ~emit_omp l.Stmt.body;
    w.indent <- w.indent - 1;
    line w "}"
  | Stmt.While (c, body) ->
    line w "while (%s) {" (gen_expr c);
    w.indent <- w.indent + 1;
    gen_stmts w ~emit_omp body;
    w.indent <- w.indent - 1;
    line w "}"
  | Stmt.Call (f, args) ->
    line w "%s(%s);" f (String.concat ", " (List.map gen_expr args))
  | Stmt.Return None -> line w "return;"
  | Stmt.Return (Some e) -> line w "return %s;" (gen_expr e)
  | Stmt.Exit_loop -> line w "break;"
  | Stmt.Cycle_loop -> line w "continue;"
  | Stmt.Critical body ->
    if emit_omp then line w "#pragma omp critical";
    line w "{";
    w.indent <- w.indent + 1;
    gen_stmts w ~emit_omp body;
    w.indent <- w.indent - 1;
    line w "}"
  | Stmt.Comment c -> line w "/* %s */" c

let param_sig (g : Grid.t) =
  match g.Grid.kind with
  | Grid.Dense t ->
    if Grid.is_scalar g then Printf.sprintf "%s %s" (ctype t) g.Grid.name
    else Printf.sprintf "%s *restrict %s" (ctype t) g.Grid.name
  | Grid.Record _ ->
    Printf.sprintf "struct %s_t *%s" g.Grid.name g.Grid.name

let local_decl w (g : Grid.t) =
  match g.Grid.kind with
  | Grid.Dense t ->
    if Grid.is_scalar g then line w "%s %s = 0;" (ctype t) g.Grid.name
    else begin
      let size =
        String.concat " * "
          (List.map
             (fun (d : Grid.dim) ->
               match d.Grid.extent with
               | Grid.Fixed n -> string_of_int n
               | Grid.Sym s -> s)
             g.Grid.dims)
      in
      line w "%s *%s = calloc(%s, sizeof(%s));" (ctype t) g.Grid.name size
        (ctype t)
    end
  | Grid.Record fields ->
    line w "struct %s_t { %s };" g.Grid.name
      (String.concat " "
         (List.map
            (fun (fn, ft) -> Printf.sprintf "%s %s;" (ctype ft) fn)
            fields));
    line w "struct %s_t %s;" g.Grid.name g.Grid.name

(** Generate one C function. *)
let gen_function ?(emit_omp = true) (f : Func.t) : string =
  let w = { buf = Buffer.create 1024; indent = 0 } in
  let ret =
    match f.Func.return with
    | None -> "void"
    | Some t -> ctype t
  in
  let params = List.map param_sig (Func.arg_grids f) in
  line w "%s %s(%s) {" ret f.Func.name
    (if params = [] then "void" else String.concat ", " params);
  w.indent <- w.indent + 1;
  List.iter (local_decl w) (Func.local_grids f);
  (* implicit loop indices are declared inline by the for-statements *)
  List.iter
    (fun (st : Func.step) ->
      line w "/* step: %s */" st.Func.label;
      gen_stmts w ~emit_omp st.Func.body)
    f.Func.steps;
  (* free dynamic locals unless SAVEd *)
  List.iter
    (fun (g : Grid.t) ->
      if (not (Grid.is_scalar g)) && not g.Grid.save then
        match g.Grid.kind with
        | Grid.Dense _ when Grid.extent_deps g <> [] ->
          line w "free(%s);" g.Grid.name
        | _ -> ())
    (Func.local_grids f);
  w.indent <- w.indent - 1;
  line w "}";
  Buffer.contents w.buf

let prelude =
  "#include <stdlib.h>\n#include <math.h>\n#ifdef _OPENMP\n#include <omp.h>\n#endif\n"

(** Generate a full C translation unit for the program. *)
let gen_program ?(emit_omp = true) (p : Ir_module.program) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b prelude;
  (* COMMON blocks and module/global grids become file-scope globals *)
  let w = { buf = b; indent = 0 } in
  let emit_global (g : Grid.t) =
    match g.Grid.kind with
    | Grid.Dense t ->
      if Grid.is_scalar g then line w "%s %s;" (ctype t) g.Grid.name
      else (
        match Grid.fixed_size g with
        | Some n -> line w "%s %s[%d];" (ctype t) g.Grid.name n
        | None -> line w "%s *%s;" (ctype t) g.Grid.name)
    | Grid.Record _ -> ()
  in
  List.iter
    (fun (g : Grid.t) -> if not (Grid.externally_declared g) then emit_global g)
    p.Ir_module.globals;
  List.iter
    (fun (m : Ir_module.t) ->
      List.iter emit_global m.Ir_module.module_grids;
      List.iter
        (fun f -> Buffer.add_string b (gen_function ~emit_omp f ^ "\n"))
        m.Ir_module.functions)
    p.Ir_module.modules;
  Buffer.contents b
